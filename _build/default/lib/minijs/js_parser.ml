(** Recursive-descent parser for the JavaScript subset. *)

open Js_ast
open Js_lexer

type state = { mutable toks : token list }

let fail = Js_lexer.fail

let tok_to_string = function
  | TNum f -> string_of_float f
  | TStr s -> Printf.sprintf "%S" s
  | TIdent i -> i
  | TPunct p -> p
  | TEof -> "<eof>"

let peek st = match st.toks with [] -> TEof | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> TEof

let next st =
  match st.toks with
  | [] -> TEof
  | t :: rest ->
      st.toks <- rest;
      t

let expect st p =
  match next st with
  | TPunct q when q = p -> ()
  | t -> fail "expected %S, found %s" p (tok_to_string t)

let accept st p =
  match peek st with
  | TPunct q when q = p ->
      ignore (next st);
      true
  | _ -> false

let accept_kw st kw =
  match peek st with
  | TIdent i when i = kw ->
      ignore (next st);
      true
  | _ -> false

let expect_ident st =
  match next st with
  | TIdent i -> i
  | t -> fail "expected an identifier, found %s" (tok_to_string t)

let rec parse_primary st =
  match next st with
  | TNum f -> Num f
  | TStr s -> Str s
  | TIdent "true" -> Bool true
  | TIdent "false" -> Bool false
  | TIdent "null" -> Null
  | TIdent "undefined" -> Undefined
  | TIdent "this" -> This
  | TIdent "function" ->
      let name =
        match peek st with
        | TIdent i ->
            ignore (next st);
            Some i
        | _ -> None
      in
      let params = parse_params st in
      let body = parse_block st in
      Func (name, params, body)
  | TIdent "new" ->
      let callee = parse_member_chain st (parse_primary st) ~no_call:true in
      let args = if peek st = TPunct "(" then parse_args st else [] in
      New_expr (callee, args)
  | TIdent i -> Var i
  | TPunct "(" ->
      let e = parse_expr st in
      expect st ")";
      e
  | TPunct "[" ->
      let rec items acc =
        if accept st "]" then List.rev acc
        else begin
          let e = parse_assign st in
          if accept st "," then items (e :: acc)
          else begin
            expect st "]";
            List.rev (e :: acc)
          end
        end
      in
      Array_lit (items [])
  | TPunct "{" ->
      let rec props acc =
        if accept st "}" then List.rev acc
        else begin
          let key =
            match next st with
            | TIdent i -> i
            | TStr s -> s
            | TNum f -> string_of_float f
            | t -> fail "expected a property name, found %s" (tok_to_string t)
          in
          expect st ":";
          let v = parse_assign st in
          if accept st "," then props ((key, v) :: acc)
          else begin
            expect st "}";
            List.rev ((key, v) :: acc)
          end
        end
      in
      Object_lit (props [])
  | t -> fail "unexpected token %s" (tok_to_string t)

and parse_args st =
  expect st "(";
  if accept st ")" then []
  else begin
    let rec args acc =
      let a = parse_assign st in
      if accept st "," then args (a :: acc)
      else begin
        expect st ")";
        List.rev (a :: acc)
      end
    in
    args []
  end

and parse_member_chain st base ~no_call =
  match peek st with
  | TPunct "." ->
      ignore (next st);
      let name = expect_ident st in
      parse_member_chain st (Member (base, name)) ~no_call
  | TPunct "[" ->
      ignore (next st);
      let idx = parse_expr st in
      expect st "]";
      parse_member_chain st (Index (base, idx)) ~no_call
  | TPunct "(" when not no_call ->
      let args = parse_args st in
      parse_member_chain st (Call (base, args)) ~no_call
  | _ -> base

and parse_postfix st =
  let e = parse_member_chain st (parse_primary st) ~no_call:false in
  match peek st with
  | TPunct "++" ->
      ignore (next st);
      Postop ("++", e)
  | TPunct "--" ->
      ignore (next st);
      Postop ("--", e)
  | _ -> e

and parse_unary st =
  match peek st with
  | TPunct "!" ->
      ignore (next st);
      Unop ("!", parse_unary st)
  | TPunct "-" ->
      ignore (next st);
      Unop ("-", parse_unary st)
  | TPunct "+" ->
      ignore (next st);
      Unop ("+", parse_unary st)
  | TPunct "++" ->
      ignore (next st);
      Unop ("++", parse_unary st)
  | TPunct "--" ->
      ignore (next st);
      Unop ("--", parse_unary st)
  | TIdent "typeof" ->
      ignore (next st);
      Unop ("typeof", parse_unary st)
  | _ -> parse_postfix st

and parse_binary st min_prec =
  let prec = function
    | "*" | "/" | "%" -> 7
    | "+" | "-" -> 6
    | "<" | "<=" | ">" | ">=" -> 5
    | "==" | "!=" | "===" | "!==" -> 4
    | "&&" -> 3
    | "||" -> 2
    | _ -> -1
  in
  let rec loop lhs =
    match peek st with
    | TPunct op when prec op >= min_prec && prec op >= 0 ->
        ignore (next st);
        let rhs = parse_binary st (prec op + 1) in
        let node =
          if op = "&&" || op = "||" then Logical (op, lhs, rhs)
          else Binop (op, lhs, rhs)
        in
        loop node
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_ternary st =
  let cond = parse_binary st 0 in
  if accept st "?" then begin
    let t = parse_assign st in
    expect st ":";
    let f = parse_assign st in
    Ternary (cond, t, f)
  end
  else cond

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | TPunct (("=" | "+=" | "-=" | "*=" | "/=" | "%=") as op) -> (
      match lhs with
      | Var _ | Member _ | Index _ ->
          ignore (next st);
          Assign (op, lhs, parse_assign st)
      | _ -> fail "invalid assignment target")
  | _ -> lhs

and parse_expr st =
  (* comma operator: evaluate left, return right *)
  let e = parse_assign st in
  if accept st "," then
    let rest = parse_expr st in
    Binop (",", e, rest)
  else e

and parse_params st =
  expect st "(";
  if accept st ")" then []
  else begin
    let rec params acc =
      let p = expect_ident st in
      if accept st "," then params (p :: acc)
      else begin
        expect st ")";
        List.rev (p :: acc)
      end
    in
    params []
  end

and parse_block st =
  expect st "{";
  let rec stmts acc =
    if accept st "}" then List.rev acc else stmts (parse_stmt st :: acc)
  in
  stmts []

and parse_stmt_or_block st =
  if peek st = TPunct "{" then parse_block st else [ parse_stmt st ]

and parse_stmt st : stmt =
  match peek st with
  | TPunct "{" -> Block (parse_block st)
  | TPunct ";" ->
      ignore (next st);
      Block []
  | TIdent "var" ->
      ignore (next st);
      let rec decls acc =
        let name = expect_ident st in
        let init = if accept st "=" then Some (parse_assign st) else None in
        if accept st "," then decls ((name, init) :: acc)
        else begin
          ignore (accept st ";");
          List.rev ((name, init) :: acc)
        end
      in
      Var_decl (decls [])
  | TIdent "if" ->
      ignore (next st);
      expect st "(";
      let cond = parse_expr st in
      expect st ")";
      let then_branch = parse_stmt_or_block st in
      let else_branch =
        if accept_kw st "else" then parse_stmt_or_block st else []
      in
      If (cond, then_branch, else_branch)
  | TIdent "while" ->
      ignore (next st);
      expect st "(";
      let cond = parse_expr st in
      expect st ")";
      While (cond, parse_stmt_or_block st)
  | TIdent "for" ->
      ignore (next st);
      expect st "(";
      (* for (var x in e) | for (init; cond; step) *)
      if
        (match (peek st, peek2 st) with
        | TIdent "var", TIdent _ -> true
        | TIdent _, TIdent "in" -> true
        | _ -> false)
        &&
        let snapshot = st.toks in
        let is_for_in =
          ignore (accept_kw st "var");
          let _ = expect_ident st in
          let r = accept_kw st "in" in
          st.toks <- snapshot;
          r
        in
        is_for_in
      then begin
        ignore (accept_kw st "var");
        let name = expect_ident st in
        let _ = accept_kw st "in" in
        let src = parse_expr st in
        expect st ")";
        For_in (name, src, parse_stmt_or_block st)
      end
      else begin
        let init =
          if peek st = TPunct ";" then None else Some (parse_stmt st)
        in
        ignore (accept st ";");
        let cond = if peek st = TPunct ";" then None else Some (parse_expr st) in
        expect st ";";
        let step = if peek st = TPunct ")" then None else Some (parse_expr st) in
        expect st ")";
        For (init, cond, step, parse_stmt_or_block st)
      end
  | TIdent "throw" ->
      ignore (next st);
      let e = parse_expr st in
      ignore (accept st ";");
      Throw e
  | TIdent "try" ->
      ignore (next st);
      let body = parse_block st in
      let catch =
        if accept_kw st "catch" then begin
          expect st "(";
          let name = expect_ident st in
          expect st ")";
          Some (name, parse_block st)
        end
        else None
      in
      let finally = if accept_kw st "finally" then parse_block st else [] in
      if catch = None && finally = [] then
        fail "try without catch or finally"
      else Try (body, catch, finally)
  | TIdent "switch" ->
      ignore (next st);
      expect st "(";
      let scrutinee = parse_expr st in
      expect st ")";
      expect st "{";
      let rec cases acc =
        if accept st "}" then List.rev acc
        else if accept_kw st "case" then begin
          let v = parse_expr st in
          expect st ":";
          let rec stmts acc2 =
            match peek st with
            | TIdent "case" | TIdent "default" | TPunct "}" -> List.rev acc2
            | _ -> stmts (parse_stmt st :: acc2)
          in
          cases ((Some v, stmts []) :: acc)
        end
        else if accept_kw st "default" then begin
          expect st ":";
          let rec stmts acc2 =
            match peek st with
            | TIdent "case" | TIdent "default" | TPunct "}" -> List.rev acc2
            | _ -> stmts (parse_stmt st :: acc2)
          in
          cases ((None, stmts []) :: acc)
        end
        else fail "expected case/default in switch"
      in
      Switch (scrutinee, cases [])
  | TIdent "do" ->
      ignore (next st);
      let body = parse_block st in
      if not (accept_kw st "while") then fail "expected while after do";
      expect st "(";
      let cond = parse_expr st in
      expect st ")";
      ignore (accept st ";");
      Do_while (body, cond)
  | TIdent "return" ->
      ignore (next st);
      let v =
        match peek st with
        | TPunct ";" | TPunct "}" | TEof -> None
        | _ -> Some (parse_expr st)
      in
      ignore (accept st ";");
      Return v
  | TIdent "break" ->
      ignore (next st);
      ignore (accept st ";");
      Break
  | TIdent "continue" ->
      ignore (next st);
      ignore (accept st ";");
      Continue
  | TIdent "function" when (match peek2 st with TIdent _ -> true | _ -> false) ->
      ignore (next st);
      let name = expect_ident st in
      let params = parse_params st in
      let body = parse_block st in
      Func_decl (name, params, body)
  | _ ->
      let e = parse_expr st in
      ignore (accept st ";");
      Expr_stmt e

let parse_program src =
  let st = { toks = Js_lexer.tokenize src } in
  let rec stmts acc =
    if peek st = TEof then List.rev acc else stmts (parse_stmt st :: acc)
  in
  stmts []

let parse_expression src =
  let st = { toks = Js_lexer.tokenize src } in
  let e = parse_expr st in
  ignore (accept st ";");
  if peek st <> TEof then fail "trailing tokens after expression";
  e
