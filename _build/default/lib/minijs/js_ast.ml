(** Abstract syntax for the JavaScript subset — the paper's baseline
    language (§2.1, §2.2, §6.2, §6.3): enough to run every JavaScript
    example in the paper, including embedded XPath via
    [document.evaluate]. *)

type expr =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Undefined
  | Var of string
  | This
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Func of string option * string list * stmt list  (** function expression *)
  | Unop of string * expr  (** [! - + typeof ++pre --pre] *)
  | Postop of string * expr  (** [x++ x--] *)
  | Binop of string * expr * expr
  | Logical of string * expr * expr  (** [&& ||] (short-circuit) *)
  | Ternary of expr * expr * expr
  | Assign of string * expr * expr  (** operator ("=", "+=" …), lhs, rhs *)
  | Call of expr * expr list
  | New_expr of expr * expr list
  | Member of expr * string  (** [a.b] *)
  | Index of expr * expr  (** [a\[b\]] *)

and stmt =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * expr option * stmt list
  | For_in of string * expr * stmt list
  | Return of expr option
  | Break
  | Continue
  | Throw of expr
  | Try of stmt list * (string * stmt list) option * stmt list
      (** try / catch (param) / finally *)
  | Switch of expr * (expr option * stmt list) list
      (** cases; [None] = default *)
  | Do_while of stmt list * expr
  | Func_decl of string * string list * stmt list
  | Block of stmt list

type program = stmt list
