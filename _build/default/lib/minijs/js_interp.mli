(** The JavaScript-subset interpreter with a browser DOM API — the
    paper's baseline client-side language (§2.1), including XPath
    embedded through [document.evaluate] (§2.2, delegated to the
    XQuery engine, of which XPath is a subset).

    Each window gets one global environment holding [document],
    [window], [alert], [XPathResult], [Math], [setTimeout] (scheduled
    on the browser's virtual clock) and friends. JavaScript and XQuery
    scripts on the same page share the same DOM and the same event
    tables, which is the co-existence the mash-up of §6.2 relies on. *)

exception Js_error of string

type value =
  | VUndefined
  | VNull
  | VBool of bool
  | VNum of float
  | VStr of string
  | VObj of obj

and obj

val to_display : value -> string

(** Run a script in the window's global environment (creating it on
    first use). *)
val run_script : Xqib.Browser.t -> Xqib.Windows.t -> string -> unit

(** Evaluate an expression in the window's global environment. *)
val eval_in_window : Xqib.Browser.t -> Xqib.Windows.t -> string -> value

(** Register the ["text/javascript"] script engine and the inline
    [on*]-attribute handler provider with {!Xqib.Page}. Idempotent. *)
val install : unit -> unit

(** Drop the global environment of a window (page unload). *)
val reset_window : Xqib.Windows.t -> unit

(** {1 Host embedding helpers}

    Used by the application server to run JSP-style scriptlets: build
    values and inject globals into a window's environment. *)

val vstr : string -> value
val vnum : float -> value
val vbool : bool -> value
val vnative : string -> (value -> value list -> value) -> value
val vplain : (string * value) list -> value
val varray : value list -> value
val vnode : Dom.node -> value
val to_string : value -> string
val to_number : value -> float
val truthy : value -> bool
val define_global : Xqib.Browser.t -> Xqib.Windows.t -> string -> value -> unit
val call : Xqib.Browser.t -> Xqib.Windows.t -> value -> value list -> value
