(** Tokenizer for the JavaScript subset. *)

type token =
  | TNum of float
  | TStr of string
  | TIdent of string
  | TPunct of string
  | TEof

exception Js_syntax_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Js_syntax_error m)) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || is_digit c

(* punctuators, longest first *)
let punctuators =
  [
    "==="; "!=="; "<<="; ">>="; "++"; "--"; "&&"; "||"; "=="; "!="; "<=";
    ">="; "+="; "-="; "*="; "/="; "%="; "{"; "}"; "("; ")"; "["; "]"; ";";
    ","; "."; "<"; ">"; "+"; "-"; "*"; "/"; "%"; "="; "!"; "?"; ":"; "&"; "|";
  ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c = '"' || c = '\'' then begin
      let q = c in
      let buf = Buffer.create 16 in
      incr i;
      let rec go () =
        if !i >= n then fail "unterminated string"
        else if src.[!i] = q then incr i
        else if src.[!i] = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | c -> Buffer.add_char buf c);
          i := !i + 2;
          go ()
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          go ()
        end
      in
      go ();
      push (TStr (Buffer.contents buf))
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      let seen_dot = ref false in
      while
        !i < n
        && (is_digit src.[!i] || (src.[!i] = '.' && not !seen_dot))
      do
        if src.[!i] = '.' then seen_dot := true;
        incr i
      done;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E')
         && !i + 1 < n
         && (is_digit src.[!i + 1]
            || ((src.[!i + 1] = '+' || src.[!i + 1] = '-')
               && !i + 2 < n
               && is_digit src.[!i + 2]))
      then begin
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done
      end;
      match float_of_string_opt (String.sub src start (!i - start)) with
      | Some f -> push (TNum f)
      | None -> fail "malformed number literal"
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (TIdent (String.sub src start (!i - start)))
    end
    else begin
      match
        List.find_opt
          (fun p ->
            let l = String.length p in
            !i + l <= n && String.sub src !i l = p)
          punctuators
      with
      | Some p ->
          i := !i + String.length p;
          push (TPunct p)
      | None -> fail "unexpected character %C" c
    end
  done;
  List.rev (TEof :: !toks)
