open Js_ast

exception Js_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Js_error m)) fmt

type value =
  | VUndefined
  | VNull
  | VBool of bool
  | VNum of float
  | VStr of string
  | VObj of obj

and obj = { oid : int; props : (string, value) Hashtbl.t; kind : kind }

and kind =
  | Plain
  | Arr of value list ref
  | Node of Dom.node
  | Snapshot of Dom.node array
  | Fun of fn
  | Native of string * (value -> value list -> value)  (** this, args *)
  | Window_obj of Xqib.Windows.t
  | Location_obj of Xqib.Windows.t
  | Style_obj of Dom.node

and fn = { params : string list; body : stmt list; closure : env }

and env = { vars : (string, value ref) Hashtbl.t; parent : env option }

let obj_counter = ref 0

let mk_obj ?(props = []) kind =
  incr obj_counter;
  let table = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace table k v) props;
  { oid = !obj_counter; props = table; kind }

let vnode n = VObj (mk_obj (Node n))
let vnative name f = VObj (mk_obj (Native (name, f)))
let varr vs = VObj (mk_obj (Arr (ref vs)))

(* ---------------- conversions ---------------- *)

let num_to_string f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec to_string = function
  | VUndefined -> "undefined"
  | VNull -> "null"
  | VBool b -> if b then "true" else "false"
  | VNum f -> num_to_string f
  | VStr s -> s
  | VObj o -> (
      match o.kind with
      | Arr items -> String.concat "," (List.map to_string !items)
      | Node n -> (
          match Dom.kind n with
          | Dom.Text -> Option.value ~default:"" (Dom.value n)
          | _ -> "[object Node]")
      | Fun _ | Native _ -> "[object Function]"
      | Window_obj _ -> "[object Window]"
      | Location_obj w -> w.Xqib.Windows.href
      | Style_obj _ -> "[object CSSStyleDeclaration]"
      | Snapshot _ -> "[object XPathResult]"
      | Plain -> "[object Object]")

let to_display = to_string

let to_number = function
  | VUndefined -> Float.nan
  | VNull -> 0.
  | VBool b -> if b then 1. else 0.
  | VNum f -> f
  | VStr s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> f
      | None -> if String.trim s = "" then 0. else Float.nan)
  | VObj _ as v -> (
      match float_of_string_opt (to_string v) with
      | Some f -> f
      | None -> Float.nan)

let truthy = function
  | VUndefined | VNull -> false
  | VBool b -> b
  | VNum f -> not (f = 0. || Float.is_nan f)
  | VStr s -> s <> ""
  | VObj _ -> true

let loose_eq a b =
  match (a, b) with
  | VUndefined, (VUndefined | VNull) | VNull, (VUndefined | VNull) -> true
  | VNum x, VNum y -> x = y
  | VStr x, VStr y -> String.equal x y
  | VBool x, VBool y -> x = y
  | VObj x, VObj y -> (
      match (x.kind, y.kind) with
      | Node a, Node b -> Dom.equal a b
      | _ -> x.oid = y.oid)
  | (VNum _ | VStr _ | VBool _), (VNum _ | VStr _ | VBool _) ->
      to_number a = to_number b
  | _ -> false

let strict_eq a b =
  match (a, b) with
  | VUndefined, VUndefined | VNull, VNull -> true
  | VNum x, VNum y -> x = y
  | VStr x, VStr y -> String.equal x y
  | VBool x, VBool y -> x = y
  | VObj x, VObj y -> x.oid = y.oid || loose_eq a b
  | _ -> false

(* ---------------- environments ---------------- *)

let new_env ?parent () = { vars = Hashtbl.create 16; parent }

let rec env_find env name =
  match Hashtbl.find_opt env.vars name with
  | Some r -> Some r
  | None -> ( match env.parent with None -> None | Some p -> env_find p name)

let env_declare env name v = Hashtbl.replace env.vars name (ref v)

let env_set env name v =
  match env_find env name with
  | Some r -> r := v
  | None ->
      (* implicit global, like sloppy-mode JS *)
      let rec top e = match e.parent with None -> e | Some p -> top p in
      env_declare (top env) name v

let env_get env name =
  match env_find env name with
  | Some r -> !r
  | None -> fail "%s is not defined" name

(* ---------------- control flow ---------------- *)

exception Return_exc of value
exception Break_exc
exception Continue_exc
exception Throw_exc of value

(* ---------------- per-window state ---------------- *)

type window_state = {
  genv : env;
  browser : Xqib.Browser.t;
  window : Xqib.Windows.t;
}

let states : (int, window_state) Hashtbl.t = Hashtbl.create 8
let reset_window w = Hashtbl.remove states w.Xqib.Windows.wid

(* ---------------- DOM bindings ---------------- *)

let qn = Xmlb.Qname.make

(* properties on elements that live in attributes *)
let attr_backed = [ "id"; "src"; "href"; "name"; "title"; "alt"; "class" ]

let rec node_prop st node name =
  let d = node in
  match name with
  | "nodeName" -> (
      match Dom.name d with
      | Some q -> VStr (String.uppercase_ascii (Xmlb.Qname.to_string q))
      | None -> (
          match Dom.kind d with
          | Dom.Text -> VStr "#text"
          | Dom.Document -> VStr "#document"
          | Dom.Comment -> VStr "#comment"
          | _ -> VStr ""))
  | "nodeType" ->
      VNum
        (match Dom.kind d with
        | Dom.Element -> 1.
        | Dom.Attribute -> 2.
        | Dom.Text -> 3.
        | Dom.Processing_instruction -> 7.
        | Dom.Comment -> 8.
        | Dom.Document -> 9.)
  | "nodeValue" -> (
      match Dom.value d with Some v -> VStr v | None -> VNull)
  | "parentNode" -> (
      match Dom.parent d with Some p -> vnode p | None -> VNull)
  | "firstChild" -> (
      match Dom.children d with c :: _ -> vnode c | [] -> VNull)
  | "lastChild" -> (
      match List.rev (Dom.children d) with c :: _ -> vnode c | [] -> VNull)
  | "nextSibling" -> (
      match Dom.following_siblings d with c :: _ -> vnode c | [] -> VNull)
  | "previousSibling" -> (
      match Dom.preceding_siblings d with c :: _ -> vnode c | [] -> VNull)
  | "childNodes" -> varr (List.map vnode (Dom.children d))
  | "children" ->
      varr
        (List.map vnode
           (List.filter (fun c -> Dom.kind c = Dom.Element) (Dom.children d)))
  | "textContent" | "innerText" -> VStr (Dom.string_value d)
  | "innerHTML" ->
      VStr (String.concat "" (List.map (fun c -> Dom.serialize c) (Dom.children d)))
  | "tagName" -> (
      match Dom.name d with
      | Some q -> VStr (String.uppercase_ascii q.Xmlb.Qname.local)
      | None -> VUndefined)
  | "style" -> VObj (mk_obj (Style_obj d))
  | "ownerDocument" -> vnode (Dom.root d)
  | "documentElement" -> (
      match Dom.children d with c :: _ -> vnode c | [] -> VNull)
  | "body" -> (
      match Dom.get_elements_by_local_name d "body" with
      | b :: _ -> vnode b
      | [] -> VNull)
  | "length" -> VNum (float_of_int (List.length (Dom.children d)))
  | "value" | "checked" -> (
      match Dom.attribute_local d name with Some v -> VStr v | None -> VStr "")
  | _ when List.mem name attr_backed -> (
      match Dom.attribute_local d name with Some v -> VStr v | None -> VStr "")
  | _ -> node_method st node name

and node_method st node name =
  let native f = vnative name f in
  let arg n args = try List.nth args n with _ -> VUndefined in
  let as_node v =
    match v with
    | VObj { kind = Node n; _ } -> n
    | _ -> fail "%s: expected a DOM node argument" name
  in
  match name with
  | "appendChild" ->
      native (fun _ args ->
          let child = as_node (arg 0 args) in
          Dom.append_child ~parent:node child;
          vnode child)
  | "insertBefore" ->
      native (fun _ args ->
          let child = as_node (arg 0 args) in
          (match arg 1 args with
          | VNull | VUndefined -> Dom.append_child ~parent:node child
          | v -> Dom.insert_before ~sibling:(as_node v) child);
          vnode child)
  | "removeChild" ->
      native (fun _ args ->
          let child = as_node (arg 0 args) in
          Dom.remove child;
          vnode child)
  | "replaceChild" ->
      native (fun _ args ->
          let newc = as_node (arg 0 args) and oldc = as_node (arg 1 args) in
          Dom.replace oldc [ newc ];
          vnode oldc)
  | "cloneNode" -> native (fun _ _ -> vnode (Dom.clone node))
  | "setAttribute" ->
      native (fun _ args ->
          Dom.set_attribute node (qn (to_string (arg 0 args))) (to_string (arg 1 args));
          VUndefined)
  | "getAttribute" ->
      native (fun _ args ->
          match Dom.attribute_local node (to_string (arg 0 args)) with
          | Some v -> VStr v
          | None -> VNull)
  | "removeAttribute" ->
      native (fun _ args ->
          Dom.remove_attribute node (qn (to_string (arg 0 args)));
          VUndefined)
  | "hasChildNodes" -> native (fun _ _ -> VBool (Dom.children node <> []))
  | "getElementById" ->
      native (fun _ args ->
          match Dom.get_element_by_id node (to_string (arg 0 args)) with
          | Some el -> vnode el
          | None -> VNull)
  | "getElementsByTagName" ->
      native (fun _ args ->
          let tag = String.lowercase_ascii (to_string (arg 0 args)) in
          let all = Dom.descendants node in
          let hit n =
            Dom.kind n = Dom.Element
            && (tag = "*"
               ||
               match Dom.name n with
               | Some q -> String.lowercase_ascii q.Xmlb.Qname.local = tag
               | None -> false)
          in
          varr (List.map vnode (List.filter hit all)))
  | "createElement" ->
      native (fun _ args -> vnode (Dom.create_element (qn (to_string (arg 0 args)))))
  | "createTextNode" ->
      native (fun _ args -> vnode (Dom.create_text (to_string (arg 0 args))))
  | "createComment" ->
      native (fun _ args -> vnode (Dom.create_comment (to_string (arg 0 args))))
  | "write" | "writeln" ->
      native (fun _ args ->
          let text = String.concat "" (List.map to_string args) in
          let target =
            match Dom.get_elements_by_local_name node "body" with
            | b :: _ -> b
            | [] -> node
          in
          (* document.write of markup: parse it so written tags become
             elements, like a real browser *)
          (match Xmlb.Xml_parser.parse text with
          | trees ->
              List.iter
                (fun t ->
                  Dom.append_child ~parent:target
                    (match t with
                    | Xmlb.Xml_parser.Text s -> Dom.create_text s
                    | t -> (
                        let tmp = Dom.of_tree [ t ] in
                        match Dom.children tmp with
                        | [ c ] ->
                            Dom.remove c;
                            c
                        | _ -> Dom.create_text text)))
                trees
          | exception _ -> Dom.append_child ~parent:target (Dom.create_text text));
          VUndefined)
  | "addEventListener" ->
      native (fun _ args ->
          let event_type = to_string (arg 0 args) in
          let listener = arg 1 args in
          let capture = truthy (arg 2 args) in
          ignore
            (Dom_event.add_listener node ~event_type ~capture (fun e ->
                 let evt = event_object e in
                 ignore (call_value st listener VUndefined [ evt ])));
          VUndefined)
  | "dispatchEvent" ->
      native (fun _ args ->
          let event_type = to_string (arg 0 args) in
          Xqib.Browser.dispatch st.browser ~target:node event_type;
          VBool true)
  | "evaluate" ->
      (* document.evaluate(xpath, context, nsResolver, type, result) —
         the §2.2 embedding; XPath runs on the XQuery engine *)
      native (fun _ args ->
          let xpath = to_string (arg 0 args) in
          let ctx_node =
            match arg 1 args with
            | VObj { kind = Node n; _ } -> n
            | _ -> node
          in
          let sctx = Xquery.Engine.default_static () in
          let expr = Xquery.Parser.parse_expression sctx xpath in
          let dctx = Xquery.Dynamic_context.create sctx in
          let dctx =
            Xquery.Dynamic_context.with_focus dctx (Xdm_item.Node ctx_node)
              ~position:1 ~size:1
          in
          let result = Xquery.Eval.eval dctx expr in
          let nodes =
            List.filter_map
              (function Xdm_item.Node n -> Some n | Xdm_item.Atomic _ -> None)
              result
          in
          VObj (mk_obj (Snapshot (Array.of_list nodes))))
  | _ -> VUndefined

and event_object (e : Dom_event.event) =
  let props =
    [ ("type", VStr e.Dom_event.event_type); ("target", vnode e.Dom_event.target) ]
    @ List.map
        (fun (k, v) ->
          ( k,
            match float_of_string_opt v with
            | Some f -> VNum f
            | None -> if v = "true" then VBool true else if v = "false" then VBool false else VStr v ))
        e.Dom_event.detail
  in
  let o = mk_obj ~props Plain in
  Hashtbl.replace o.props "preventDefault"
    (vnative "preventDefault" (fun _ _ ->
         Dom_event.prevent_default e;
         VUndefined));
  Hashtbl.replace o.props "stopPropagation"
    (vnative "stopPropagation" (fun _ _ ->
         Dom_event.stop_propagation e;
         VUndefined));
  VObj o

(* ---------------- property access ---------------- *)

and get_prop st target name =
  match target with
  | VStr s -> (
      match name with
      | "length" -> VNum (float_of_int (String.length s))
      | "toUpperCase" -> vnative name (fun _ _ -> VStr (String.uppercase_ascii s))
      | "toLowerCase" -> vnative name (fun _ _ -> VStr (String.lowercase_ascii s))
      | "charAt" ->
          vnative name (fun _ args ->
              let i = int_of_float (to_number (List.nth args 0)) in
              if i >= 0 && i < String.length s then VStr (String.make 1 s.[i])
              else VStr "")
      | "indexOf" ->
          vnative name (fun _ args ->
              let sub = to_string (List.nth args 0) in
              let n = String.length s and m = String.length sub in
              let rec scan i =
                if i + m > n then -1
                else if String.sub s i m = sub then i
                else scan (i + 1)
              in
              VNum (float_of_int (scan 0)))
      | "substring" ->
          vnative name (fun _ args ->
              let a = max 0 (int_of_float (to_number (List.nth args 0))) in
              let b =
                match args with
                | _ :: x :: _ -> min (String.length s) (int_of_float (to_number x))
                | _ -> String.length s
              in
              let lo = min a b and hi = max a b in
              VStr (String.sub s lo (hi - lo)))
      | "split" ->
          vnative name (fun _ args ->
              let sep = to_string (List.nth args 0) in
              let parts =
                if sep = "" then List.map (String.make 1) (List.init (String.length s) (String.get s))
                else Str.split_delim (Str.regexp_string sep) s
              in
              varr (List.map (fun p -> VStr p) parts))
      | "replace" ->
          vnative name (fun _ args ->
              let pat = to_string (List.nth args 0) in
              let rep = to_string (List.nth args 1) in
              VStr (Str.replace_first (Str.regexp_string pat) rep s))
      | "trim" -> vnative name (fun _ _ -> VStr (String.trim s))
      | _ -> VUndefined)
  | VObj o -> (
      match Hashtbl.find_opt o.props name with
      | Some v -> v
      | None -> (
          match o.kind with
          | Node n -> node_prop st n name
          | Snapshot nodes -> (
              match name with
              | "snapshotLength" -> VNum (float_of_int (Array.length nodes))
              | "snapshotItem" ->
                  vnative name (fun _ args ->
                      let i = int_of_float (to_number (List.nth args 0)) in
                      if i >= 0 && i < Array.length nodes then vnode nodes.(i)
                      else VNull)
              | _ -> VUndefined)
          | Arr items -> (
              match name with
              | "length" -> VNum (float_of_int (List.length !items))
              | "push" ->
                  vnative name (fun _ args ->
                      items := !items @ args;
                      VNum (float_of_int (List.length !items)))
              | "pop" ->
                  vnative name (fun _ _ ->
                      match List.rev !items with
                      | [] -> VUndefined
                      | last :: rest ->
                          items := List.rev rest;
                          last)
              | "join" ->
                  vnative name (fun _ args ->
                      let sep =
                        match args with [] -> "," | s :: _ -> to_string s
                      in
                      VStr (String.concat sep (List.map to_string !items)))
              | "indexOf" ->
                  vnative name (fun _ args ->
                      let target = List.nth args 0 in
                      let rec scan i = function
                        | [] -> -1
                        | x :: rest -> if loose_eq x target then i else scan (i + 1) rest
                      in
                      VNum (float_of_int (scan 0 !items)))
              | _ -> VUndefined)
          | Window_obj w -> (
              match name with
              | "status" -> VStr w.Xqib.Windows.status
              | "name" -> VStr w.Xqib.Windows.wname
              | "location" -> VObj (mk_obj (Location_obj w))
              | "document" -> vnode w.Xqib.Windows.document
              | "top" -> VObj (mk_obj (Window_obj (Xqib.Windows.top w)))
              | "self" | "window" -> target
              | "parent" -> (
                  match w.Xqib.Windows.parent with
                  | Some p -> VObj (mk_obj (Window_obj p))
                  | None -> target)
              | "frames" ->
                  varr
                    (List.map
                       (fun f -> VObj (mk_obj (Window_obj f)))
                       w.Xqib.Windows.frames)
              | "alert" ->
                  vnative name (fun _ args ->
                      st.browser.Xqib.Browser.alerts <-
                        to_string (List.nth args 0)
                        :: st.browser.Xqib.Browser.alerts;
                      VUndefined)
              | "setTimeout" ->
                  vnative name (fun _ args ->
                      let f = List.nth args 0 in
                      let delay = try to_number (List.nth args 1) /. 1000. with _ -> 0. in
                      Virtual_clock.schedule st.browser.Xqib.Browser.clock ~delay
                        (fun () -> ignore (call_value st f VUndefined []));
                      VNum 0.)
              | _ -> VUndefined)
          | Location_obj w -> (
              match name with
              | "href" -> VStr w.Xqib.Windows.href
              | "host" -> (
                  match Http_sim.split_uri w.Xqib.Windows.href with
                  | Some (h, _) -> VStr h
                  | None -> VStr "")
              | _ -> VUndefined)
          | Style_obj node -> (
              match Xquery.Style_util.get_on_node node (css_name name) with
              | Some v -> VStr v
              | None -> VStr "")
          | Plain | Fun _ | Native _ -> VUndefined))
  | VNum _ | VBool _ | VNull | VUndefined ->
      fail "cannot read property %S of %s" name (to_string target)

(* JS camelCase style property -> CSS dashed name *)
and css_name s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      if c >= 'A' && c <= 'Z' then begin
        Buffer.add_char buf '-';
        Buffer.add_char buf (Char.lowercase_ascii c)
      end
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

and set_prop st target name v =
  match target with
  | VObj o -> (
      match o.kind with
      | Node node -> (
          match name with
          | "nodeValue" | "textContent" | "innerText" -> Dom.set_value node (to_string v)
          | "innerHTML" -> (
              List.iter Dom.remove (Dom.children node);
              match Xmlb.Xml_parser.parse (to_string v) with
              | trees ->
                  let tmp = Dom.of_tree trees in
                  List.iter
                    (fun c ->
                      Dom.remove c;
                      Dom.append_child ~parent:node c)
                    (Dom.children tmp)
              | exception _ ->
                  Dom.append_child ~parent:node (Dom.create_text (to_string v)))
          | "value" | "checked" -> Dom.set_attribute node (qn name) (to_string v)
          | _ when List.mem name attr_backed ->
              Dom.set_attribute node (qn name) (to_string v)
          | _ -> Hashtbl.replace o.props name v)
      | Window_obj w -> (
          match name with
          | "status" -> w.Xqib.Windows.status <- to_string v
          | "name" -> w.Xqib.Windows.wname <- to_string v
          | "location" ->
              Xqib.Windows.navigate w (to_string v);
              st.browser.Xqib.Browser.on_navigate w (to_string v)
          | _ -> Hashtbl.replace o.props name v)
      | Location_obj w -> (
          match name with
          | "href" ->
              Xqib.Windows.navigate w (to_string v);
              st.browser.Xqib.Browser.on_navigate w (to_string v)
          | _ -> Hashtbl.replace o.props name v)
      | Style_obj node ->
          Xquery.Style_util.set_on_node node (css_name name) (to_string v)
      | _ -> Hashtbl.replace o.props name v)
  | _ -> fail "cannot set property %S on %s" name (to_string target)

(* ---------------- calls ---------------- *)

and call_value st callee this args =
  match callee with
  | VObj { kind = Native (_, f); _ } -> f this args
  | VObj { kind = Fun { params; body; closure }; _ } ->
      let env = new_env ~parent:closure () in
      env_declare env "this" this;
      env_declare env "arguments" (varr args);
      List.iteri
        (fun i p ->
          env_declare env p (try List.nth args i with _ -> VUndefined))
        params;
      (try
         exec_stmts st env body;
         VUndefined
       with Return_exc v -> v)
  | v -> fail "%s is not a function" (to_string v)

(* ---------------- expression evaluation ---------------- *)

and eval_expr st env (e : expr) : value =
  match e with
  | Num f -> VNum f
  | Str s -> VStr s
  | Bool b -> VBool b
  | Null -> VNull
  | Undefined -> VUndefined
  | This -> ( match env_find env "this" with Some r -> !r | None -> VUndefined)
  | Var name -> env_get env name
  | Array_lit es -> varr (List.map (eval_expr st env) es)
  | Object_lit fields ->
      VObj
        (mk_obj ~props:(List.map (fun (k, e) -> (k, eval_expr st env e)) fields) Plain)
  | Func (name, params, body) ->
      let f = VObj (mk_obj (Fun { params; body; closure = env })) in
      (match name with Some n -> env_declare env n f | None -> ());
      f
  | Unop (op, e) -> (
      match op with
      | "!" -> VBool (not (truthy (eval_expr st env e)))
      | "-" -> VNum (-.to_number (eval_expr st env e))
      | "+" -> VNum (to_number (eval_expr st env e))
      | "typeof" -> (
          match eval_expr st env e with
          | VUndefined -> VStr "undefined"
          | VNull -> VStr "object"
          | VBool _ -> VStr "boolean"
          | VNum _ -> VStr "number"
          | VStr _ -> VStr "string"
          | VObj { kind = Fun _ | Native _; _ } -> VStr "function"
          | VObj _ -> VStr "object")
      | "++" | "--" ->
          let delta = if op = "++" then 1. else -1. in
          let v = VNum (to_number (eval_expr st env e) +. delta) in
          assign_to st env e v;
          v
      | op -> fail "unsupported unary operator %s" op)
  | Postop (op, e) ->
      let old = to_number (eval_expr st env e) in
      let delta = if op = "++" then 1. else -1. in
      assign_to st env e (VNum (old +. delta));
      VNum old
  | Binop (",", a, b) ->
      ignore (eval_expr st env a);
      eval_expr st env b
  | Binop (op, a, b) -> (
      let va = eval_expr st env a and vb = eval_expr st env b in
      match op with
      | "+" -> (
          match (va, vb) with
          | VStr _, _ | _, VStr _ -> VStr (to_string va ^ to_string vb)
          | _ -> VNum (to_number va +. to_number vb))
      | "-" -> VNum (to_number va -. to_number vb)
      | "*" -> VNum (to_number va *. to_number vb)
      | "/" -> VNum (to_number va /. to_number vb)
      | "%" -> VNum (Float.rem (to_number va) (to_number vb))
      | "==" -> VBool (loose_eq va vb)
      | "!=" -> VBool (not (loose_eq va vb))
      | "===" -> VBool (strict_eq va vb)
      | "!==" -> VBool (not (strict_eq va vb))
      | "<" | "<=" | ">" | ">=" -> (
          let cmp =
            match (va, vb) with
            | VStr x, VStr y -> compare x y
            | _ -> compare (to_number va) (to_number vb)
          in
          VBool
            (match op with
            | "<" -> cmp < 0
            | "<=" -> cmp <= 0
            | ">" -> cmp > 0
            | _ -> cmp >= 0))
      | op -> fail "unsupported operator %s" op)
  | Logical ("&&", a, b) ->
      let va = eval_expr st env a in
      if truthy va then eval_expr st env b else va
  | Logical ("||", a, b) ->
      let va = eval_expr st env a in
      if truthy va then va else eval_expr st env b
  | Logical (op, _, _) -> fail "unsupported logical operator %s" op
  | Ternary (c, t, f) ->
      if truthy (eval_expr st env c) then eval_expr st env t
      else eval_expr st env f
  | Assign ("=", lhs, rhs) ->
      let v = eval_expr st env rhs in
      assign_to st env lhs v;
      v
  | Assign (op, lhs, rhs) ->
      let current = eval_expr st env lhs in
      let rv = eval_expr st env rhs in
      let v =
        match op with
        | "+=" -> (
            match (current, rv) with
            | VStr _, _ | _, VStr _ -> VStr (to_string current ^ to_string rv)
            | _ -> VNum (to_number current +. to_number rv))
        | "-=" -> VNum (to_number current -. to_number rv)
        | "*=" -> VNum (to_number current *. to_number rv)
        | "/=" -> VNum (to_number current /. to_number rv)
        | "%=" -> VNum (Float.rem (to_number current) (to_number rv))
        | op -> fail "unsupported assignment %s" op
      in
      assign_to st env lhs v;
      v
  | Call (Member (obj_e, name), args) ->
      let this = eval_expr st env obj_e in
      let callee = get_prop st this name in
      call_value st callee this (List.map (eval_expr st env) args)
  | Call (f, args) ->
      let callee = eval_expr st env f in
      call_value st callee VUndefined (List.map (eval_expr st env) args)
  | New_expr (callee, args) ->
      (* minimal: new X(...) behaves like calling X with a fresh this *)
      let this = VObj (mk_obj Plain) in
      let c = eval_expr st env callee in
      ignore (call_value st c this (List.map (eval_expr st env) args));
      this
  | Member (e, name) -> get_prop st (eval_expr st env e) name
  | Index (e, idx) -> (
      let target = eval_expr st env e in
      let i = eval_expr st env idx in
      match (target, i) with
      | VObj { kind = Arr items; _ }, VNum f ->
          let n = int_of_float f in
          if n >= 0 && n < List.length !items then List.nth !items n
          else VUndefined
      | VStr s, VNum f ->
          let n = int_of_float f in
          if n >= 0 && n < String.length s then VStr (String.make 1 s.[n])
          else VUndefined
      | t, i -> get_prop st t (to_string i))

and assign_to st env lhs v =
  match lhs with
  | Var name -> env_set env name v
  | Member (e, name) -> set_prop st (eval_expr st env e) name v
  | Index (e, idx) -> (
      let target = eval_expr st env e in
      let i = eval_expr st env idx in
      match (target, i) with
      | VObj { kind = Arr items; _ }, VNum f ->
          let n = int_of_float f in
          let len = List.length !items in
          if n >= 0 && n < len then
            items := List.mapi (fun j x -> if j = n then v else x) !items
          else if n = len then items := !items @ [ v ]
          else ()
      | t, i -> set_prop st t (to_string i) v)
  | _ -> fail "invalid assignment target"

(* ---------------- statements ---------------- *)

and exec_stmt st env = function
  | Expr_stmt e -> ignore (eval_expr st env e)
  | Var_decl decls ->
      List.iter
        (fun (name, init) ->
          let v = match init with Some e -> eval_expr st env e | None -> VUndefined in
          env_declare env name v)
        decls
  | If (c, t, f) ->
      if truthy (eval_expr st env c) then exec_stmts st env t
      else exec_stmts st env f
  | While (c, body) ->
      let budget = ref 10_000_000 in
      (try
         while truthy (eval_expr st env c) do
           decr budget;
           if !budget <= 0 then fail "while loop budget exhausted";
           try exec_stmts st env body with Continue_exc -> ()
         done
       with Break_exc -> ())
  | For (init, cond, step, body) ->
      (match init with Some s -> exec_stmt st env s | None -> ());
      let budget = ref 10_000_000 in
      (try
         while
           match cond with Some c -> truthy (eval_expr st env c) | None -> true
         do
           decr budget;
           if !budget <= 0 then fail "for loop budget exhausted";
           (try exec_stmts st env body with Continue_exc -> ());
           match step with Some s -> ignore (eval_expr st env s) | None -> ()
         done
       with Break_exc -> ())
  | For_in (name, src, body) ->
      let keys =
        match eval_expr st env src with
        | VObj { kind = Arr items; _ } ->
            List.mapi (fun i _ -> VNum (float_of_int i)) !items
        | VObj o -> Hashtbl.fold (fun k _ acc -> VStr k :: acc) o.props []
        | _ -> []
      in
      if not (Hashtbl.mem env.vars name) then env_declare env name VUndefined;
      (try
         List.iter
           (fun k ->
             env_set env name k;
             try exec_stmts st env body with Continue_exc -> ())
           keys
       with Break_exc -> ())
  | Throw e -> raise (Throw_exc (eval_expr st env e))
  | Try (body, catch, finally) ->
      Fun.protect
        ~finally:(fun () -> exec_stmts st env finally)
        (fun () ->
          try exec_stmts st env body
          with
          | Throw_exc v -> (
              match catch with
              | Some (name, handler) ->
                  let cenv = new_env ~parent:env () in
                  env_declare cenv name v;
                  exec_stmts st cenv handler
              | None -> raise (Throw_exc v))
          | Js_error m -> (
              (* host errors are catchable too, like DOM exceptions *)
              match catch with
              | Some (name, handler) ->
                  let cenv = new_env ~parent:env () in
                  env_declare cenv name (VStr m);
                  exec_stmts st cenv handler
              | None -> raise (Js_error m)))
  | Switch (scrutinee, cases) ->
      let v = eval_expr st env scrutinee in
      (* find the matching case (or default), then fall through *)
      let rec find = function
        | [] -> []
        | (Some c, _) :: rest when not (strict_eq (eval_expr st env c) v) ->
            find rest
        | hit -> hit
      in
      let selected =
        match find cases with
        | [] -> (
            (* no case matched: run from default if present *)
            let rec from_default = function
              | [] -> []
              | (None, _) :: _ as hit -> hit
              | _ :: rest -> from_default rest
            in
            from_default cases)
        | hit -> hit
      in
      (try List.iter (fun (_, stmts) -> exec_stmts st env stmts) selected
       with Break_exc -> ())
  | Do_while (body, cond) ->
      let budget = ref 10_000_000 in
      (try
         let continue_loop = ref true in
         while !continue_loop do
           decr budget;
           if !budget <= 0 then fail "do-while budget exhausted";
           (try exec_stmts st env body with Continue_exc -> ());
           continue_loop := truthy (eval_expr st env cond)
         done
       with Break_exc -> ())
  | Return e ->
      raise (Return_exc (match e with Some e -> eval_expr st env e | None -> VUndefined))
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc
  | Func_decl (name, params, body) ->
      env_declare env name (VObj (mk_obj (Fun { params; body; closure = env })))
  | Block stmts -> exec_stmts st env stmts

and exec_stmts st env stmts = List.iter (exec_stmt st env) stmts

(* ---------------- globals ---------------- *)

let math_object () =
  let unary name f =
    (name, vnative name (fun _ args -> VNum (f (to_number (List.nth args 0)))))
  in
  (* deterministic pseudo-random: a seeded LCG, reproducible runs *)
  let seed = ref 42 in
  let props =
    [
      unary "floor" Float.floor;
      unary "ceil" Float.ceil;
      unary "abs" Float.abs;
      unary "sqrt" Float.sqrt;
      unary "round" (fun x -> Float.floor (x +. 0.5));
      ( "max",
        vnative "max" (fun _ args ->
            VNum (List.fold_left (fun a v -> Float.max a (to_number v)) Float.neg_infinity args)) );
      ( "min",
        vnative "min" (fun _ args ->
            VNum (List.fold_left (fun a v -> Float.min a (to_number v)) Float.infinity args)) );
      ( "random",
        vnative "random" (fun _ _ ->
            seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
            VNum (float_of_int !seed /. float_of_int 0x40000000)) );
      ("PI", VNum Float.pi);
    ]
  in
  VObj (mk_obj ~props Plain)

let xpath_result_object () =
  let props =
    [
      ("ANY_TYPE", VNum 0.);
      ("NUMBER_TYPE", VNum 1.);
      ("STRING_TYPE", VNum 2.);
      ("BOOLEAN_TYPE", VNum 3.);
      ("UNORDERED_NODE_ITERATOR_TYPE", VNum 4.);
      ("ORDERED_NODE_ITERATOR_TYPE", VNum 5.);
      ("UNORDERED_NODE_SNAPSHOT_TYPE", VNum 6.);
      ("ORDERED_NODE_SNAPSHOT_TYPE", VNum 7.);
      ("ANY_UNORDERED_NODE_TYPE", VNum 8.);
      ("FIRST_ORDERED_NODE_TYPE", VNum 9.);
    ]
  in
  VObj (mk_obj ~props Plain)

let state_for browser window =
  match Hashtbl.find_opt states window.Xqib.Windows.wid with
  | Some st when st.window.Xqib.Windows.document == window.Xqib.Windows.document ->
      st
  | _ ->
      let genv = new_env () in
      let st = { genv; browser; window } in
      let win_obj = VObj (mk_obj (Window_obj window)) in
      env_declare genv "window" win_obj;
      env_declare genv "self" win_obj;
      env_declare genv "top" (VObj (mk_obj (Window_obj (Xqib.Windows.top window))));
      env_declare genv "document" (vnode window.Xqib.Windows.document);
      env_declare genv "location" (VObj (mk_obj (Location_obj window)));
      env_declare genv "navigator"
        (VObj
           (mk_obj
              ~props:
                [
                  ("appName", VStr browser.Xqib.Browser.navigator.Xqib.Bom.app_name);
                  ("userAgent", VStr browser.Xqib.Browser.navigator.Xqib.Bom.user_agent);
                ]
              Plain));
      env_declare genv "screen"
        (VObj
           (mk_obj
              ~props:
                [
                  ("width", VNum (float_of_int browser.Xqib.Browser.screen.Xqib.Bom.width));
                  ("height", VNum (float_of_int browser.Xqib.Browser.screen.Xqib.Bom.height));
                ]
              Plain));
      env_declare genv "alert"
        (vnative "alert" (fun _ args ->
             browser.Xqib.Browser.alerts <-
               to_string (List.nth args 0) :: browser.Xqib.Browser.alerts;
             VUndefined));
      env_declare genv "setTimeout"
        (vnative "setTimeout" (fun _ args ->
             let f = List.nth args 0 in
             let delay = try to_number (List.nth args 1) /. 1000. with _ -> 0. in
             Virtual_clock.schedule browser.Xqib.Browser.clock ~delay (fun () ->
                 ignore (call_value st f VUndefined []));
             VNum 0.));
      env_declare genv "parseInt"
        (vnative "parseInt" (fun _ args ->
             VNum (Float.trunc (to_number (List.nth args 0)))));
      env_declare genv "parseFloat"
        (vnative "parseFloat" (fun _ args -> VNum (to_number (List.nth args 0))));
      env_declare genv "isNaN"
        (vnative "isNaN" (fun _ args -> VBool (Float.is_nan (to_number (List.nth args 0)))));
      env_declare genv "String"
        (vnative "String" (fun _ args ->
             VStr (match args with [] -> "" | v :: _ -> to_string v)));
      env_declare genv "Number"
        (vnative "Number" (fun _ args ->
             VNum (match args with [] -> 0. | v :: _ -> to_number v)));
      env_declare genv "Math" (math_object ());
      env_declare genv "XPathResult" (xpath_result_object ());
      env_declare genv "console"
        (VObj
           (mk_obj
              ~props:
                [
                  ( "log",
                    vnative "log" (fun _ args ->
                        Logs.info (fun m ->
                            m "console.log: %s"
                              (String.concat " " (List.map to_string args)));
                        VUndefined) );
                ]
              Plain));
      Hashtbl.replace states window.Xqib.Windows.wid st;
      st

let run_script browser window source =
  let st = state_for browser window in
  let prog = Js_parser.parse_program source in
  exec_stmts st st.genv prog

let eval_in_window browser window source =
  let st = state_for browser window in
  eval_expr st st.genv (Js_parser.parse_expression source)

(* inline handler provider: handles on* attributes when the page has a
   JS state and the source does not look like an XQuery QName call *)
let handle_inline _browser window ~element ~event_type ~source =
  if String.contains source ':' then false
  else
    match Hashtbl.find_opt states window.Xqib.Windows.wid with
    | None -> false
    | Some st -> (
        match Js_parser.parse_expression source with
        | expr ->
            ignore
              (Dom_event.add_listener element ~event_type
                 ~name:("js-inline:" ^ string_of_int (Dom.id element) ^ ":" ^ event_type)
                 (fun e ->
                   let env = new_env ~parent:st.genv () in
                   env_declare env "event" (event_object e);
                   env_declare env "this" (vnode element);
                   ignore (eval_expr st env expr)));
            true
        | exception _ -> false)

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Xqib.Page.register_script_engine ~script_type:"text/javascript"
      (fun browser window ~script_element:_ ~source ->
        run_script browser window source);
    Xqib.Page.register_script_engine ~script_type:"application/javascript"
      (fun browser window ~script_element:_ ~source ->
        run_script browser window source);
    Xqib.Page.register_inline_handler_provider (fun browser window ~element ~event_type ~source ->
        handle_inline browser window ~element ~event_type ~source)
  end

(* ---------------- host embedding helpers ---------------- *)

let vstr s = VStr s
let vnum f = VNum f
let vbool b = VBool b
let vplain props = VObj (mk_obj ~props Plain)
let varray vs = varr vs

let define_global browser window name v =
  let st = state_for browser window in
  env_declare st.genv name v

let call browser window f args =
  let st = state_for browser window in
  call_value st f VUndefined args
