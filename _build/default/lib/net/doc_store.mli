(** An in-memory XML document store — the stand-in for the paper's
    XML database (MarkLogic in §6.1). Documents are served over the
    simulated HTTP layer as whole documents, which is exactly the
    adjustment the paper describes making for cacheability ("serve
    whole documents rather than individual queries"). *)

type t

val create : unit -> t

(** Store a document under a name (parsed copy is kept). *)
val put : t -> name:string -> Dom.node -> unit

val put_xml : t -> name:string -> string -> unit
val get : t -> string -> Dom.node option
val list : t -> string list
val size : t -> int

(** Serve the store over HTTP: [GET /docs/<name>] returns the
    serialized document; [GET /docs] returns an index. *)
val attach : t -> Http_sim.t -> host:string -> unit

(** The URI a document is served under. *)
val uri_of : host:string -> name:string -> string
