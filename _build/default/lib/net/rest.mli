(** REST support for XQuery (paper §3.4/§5.1: "Zorba chose to first
    support REST, synchronous REST calls are possible").

    Installs external functions in the [rest] namespace into a static
    context:

    - [rest:get($uri)] — fetch; XML responses parse to a document node;
    - [rest:get-text($uri)] — fetch as a string;
    - [rest:post($uri, $body)] — POST, result handled like [rest:get].

    An optional client-side document cache implements the paper's
    §6.1 optimisation ("whole XML documents can be cached in the
    browser so that most user requests can be processed without any
    interaction with the Elsevier server"). *)

val namespace : string

type client

val make_client : ?cache:bool -> Http_sim.t -> client

(** Install a connectivity guard: when it returns false, every
    network operation raises FODC0002 (cache hits still succeed) —
    models working offline against cached/local data (paper §2.4). *)
val set_online_guard : client -> (unit -> bool) -> unit

(** Requests answered from the cache (no HTTP traffic). *)
val cache_hits : client -> int

val cache_misses : client -> int
val clear_cache : client -> unit

(** Fetch a document through the client (cache-aware), parsed. *)
val get_doc : client -> string -> Dom.node

(** Bind the [rest] prefix and register the functions. *)
val install : client -> Xquery.Static_context.t -> unit
