open Xmlb

let namespace = "http://www.example.com/rest"

type client = {
  http : Http_sim.t;
  cache : (string, Dom.node) Hashtbl.t option;
  mutable hits : int;
  mutable misses : int;
  mutable online : unit -> bool;
}

let make_client ?(cache = false) http =
  {
    http;
    cache = (if cache then Some (Hashtbl.create 16) else None);
    hits = 0;
    misses = 0;
    online = (fun () -> true);
  }

let cache_hits c = c.hits
let cache_misses c = c.misses

let clear_cache c =
  match c.cache with Some t -> Hashtbl.reset t | None -> ()

let err fmt = Xquery.Xq_error.raise_error "FODC0002" fmt

let set_online_guard c guard = c.online <- guard

let require_online c uri =
  if not (c.online ()) then err "offline: cannot fetch %s" uri

let fetch_doc c uri =
  require_online c uri;
  let resp = Http_sim.fetch c.http uri in
  if resp.Http_sim.status <> 200 then
    err "REST GET %s failed with status %d" uri resp.Http_sim.status
  else
    try Dom.of_string resp.Http_sim.body
    with _ -> err "REST GET %s: response is not well-formed XML" uri

let get_doc c uri =
  match c.cache with
  | None ->
      c.misses <- c.misses + 1;
      fetch_doc c uri
  | Some table -> (
      match Hashtbl.find_opt table uri with
      | Some doc ->
          c.hits <- c.hits + 1;
          doc
      | None ->
          c.misses <- c.misses + 1;
          let doc = fetch_doc c uri in
          Hashtbl.add table uri doc;
          doc)

let seq_string seq = Xdm_item.sequence_string seq

let response_to_sequence resp =
  if resp.Http_sim.status <> 200 then
    err "REST call failed with status %d" resp.Http_sim.status
  else
    match Dom.of_string resp.Http_sim.body with
    | doc -> [ Xdm_item.Node doc ]
    | exception _ -> [ Xdm_item.Atomic (Xdm_atomic.String resp.Http_sim.body) ]

let install c sctx =
  Xquery.Static_context.declare_namespace sctx ~prefix:"rest" ~uri:namespace;
  let register local arity f =
    Xquery.Static_context.register_external sctx
      (Qname.make ~uri:namespace local)
      ~arity f
  in
  register "get" 1 (fun _cctx args ->
      let uri = seq_string (List.nth args 0) in
      [ Xdm_item.Node (get_doc c uri) ]);
  register "get-text" 1 (fun _cctx args ->
      let uri = seq_string (List.nth args 0) in
      require_online c uri;
      let resp = Http_sim.fetch c.http uri in
      if resp.Http_sim.status <> 200 then
        err "REST GET %s failed with status %d" uri resp.Http_sim.status
      else [ Xdm_item.Atomic (Xdm_atomic.String resp.Http_sim.body) ]);
  register "post" 2 (fun _cctx args ->
      let uri = seq_string (List.nth args 0) in
      require_online c uri;
      let body = seq_string (List.nth args 1) in
      response_to_sequence (Http_sim.fetch c.http ~meth:Http_sim.Post ~body uri))
