lib/net/doc_store.mli: Dom Http_sim
