lib/net/web_service.ml: Buffer Dom Http_sim List Option Printf Qname String Xdm_atomic Xdm_item Xml_escape Xmlb Xquery
