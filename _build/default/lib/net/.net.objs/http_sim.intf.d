lib/net/http_sim.mli: Virtual_clock
