lib/net/rest.mli: Dom Http_sim Xquery
