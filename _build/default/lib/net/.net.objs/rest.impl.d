lib/net/rest.ml: Dom Hashtbl Http_sim List Qname Xdm_atomic Xdm_item Xmlb Xquery
