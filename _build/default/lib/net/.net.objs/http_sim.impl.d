lib/net/http_sim.ml: Hashtbl Option String Virtual_clock
