lib/net/virtual_clock.ml: Float List Xdm_datetime
