lib/net/virtual_clock.mli: Xdm_datetime
