lib/net/doc_store.ml: Dom Hashtbl Http_sim List String
