lib/net/web_service.mli: Http_sim Xquery
