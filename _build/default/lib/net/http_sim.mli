(** A simulated HTTP layer over the virtual clock.

    Hosts register handlers under ["host[:port]"]; clients fetch by
    URI. Latency is modelled as [base + per_kb * size] virtual seconds
    each way, so the server-offload experiment (paper §6.1 / Fig. 2)
    can count both requests and time. *)

type meth = Get | Post

type request = { meth : meth; uri : string; path : string; body : string option }

type response = { status : int; body : string; content_type : string }

type latency_model = {
  base : float;  (** per-request virtual seconds *)
  per_kb : float;  (** additional seconds per KiB of response body *)
}

val default_latency : latency_model

type t

val create : ?latency:latency_model -> Virtual_clock.t -> t
val clock : t -> Virtual_clock.t

(** Register a handler for a host (e.g. ["www.example.com"] or
    ["localhost:2001"]). *)
val register_host : t -> host:string -> (request -> response) -> unit

(** The currently registered handler for a host, for chaining. *)
val find_host : t -> host:string -> (request -> response) option

(** Convenience: serve a fixed document body at exactly this URI. *)
val register_doc : t -> uri:string -> ?content_type:string -> string -> unit

val ok : ?content_type:string -> string -> response
val not_found : string -> response

(** Split a URI into (host, path): ["http://h:1/p?q"] → (["h:1"], ["/p?q"]). *)
val split_uri : string -> (string * string) option

(** Synchronous fetch: advances the virtual clock by the round-trip
    latency (models a blocking XMLHttpRequest). *)
val fetch : t -> ?meth:meth -> ?body:string -> string -> response

(** Asynchronous fetch: schedules the callback after the round-trip
    latency without blocking the caller. *)
val fetch_async :
  t -> ?meth:meth -> ?body:string -> string -> (response -> unit) -> unit

(** {1 Statistics (per host)} *)

val request_count : t -> host:string -> int
val total_requests : t -> int
val bytes_served : t -> host:string -> int
val reset_stats : t -> unit
