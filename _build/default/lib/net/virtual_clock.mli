(** A deterministic virtual clock with a task queue.

    All latency in the simulated network and browser event loop is
    virtual: scheduling a task at [now + delay] and running the queue
    advances time without wall-clock sleeping, so tests and the
    offload/async experiments (F2, T4) are exactly reproducible. *)

type t

val create : ?start:float -> unit -> t

(** Current virtual time in seconds. *)
val now : t -> float

(** Advance time directly (models synchronous blocking work). *)
val sleep : t -> float -> unit

(** Schedule a task [delay] seconds from now. Tasks with equal fire
    times run in scheduling order. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

val pending : t -> int

(** Run the earliest task (advancing time to its fire time). Returns
    false if the queue is empty. *)
val run_next : t -> bool

(** Run tasks until the queue is empty. [max_tasks] (default 100_000)
    guards against runaway self-scheduling loops. *)
val run_until_idle : ?max_tasks:int -> t -> unit

(** Epoch offset: virtual time 0 corresponds to this dateTime; used to
    expose the clock as fn:current-dateTime(). *)
val to_datetime : t -> Xdm_datetime.t
