type t = { docs : (string, Dom.node) Hashtbl.t }

let create () = { docs = Hashtbl.create 16 }
let put t ~name doc = Hashtbl.replace t.docs name doc
let put_xml t ~name xml = put t ~name (Dom.of_string xml)
let get t name = Hashtbl.find_opt t.docs name
let list t = Hashtbl.fold (fun k _ acc -> k :: acc) t.docs []
let size t = Hashtbl.length t.docs

let uri_of ~host ~name = "http://" ^ host ^ "/docs/" ^ name

let attach t http ~host =
  Http_sim.register_host http ~host (fun req ->
      let path = req.Http_sim.path in
      let prefix = "/docs/" in
      let n = String.length prefix in
      if String.equal path "/docs" || String.equal path "/docs/" then
        Http_sim.ok
          ("<index>"
          ^ String.concat ""
              (List.map (fun d -> "<doc name=\"" ^ d ^ "\"/>") (list t))
          ^ "</index>")
      else if String.length path > n && String.sub path 0 n = prefix then
        let name = String.sub path n (String.length path - n) in
        match get t name with
        | Some doc -> Http_sim.ok (Dom.serialize doc)
        | None -> Http_sim.not_found path
      else Http_sim.not_found path)
