type meth = Get | Post

type request = { meth : meth; uri : string; path : string; body : string option }

type response = { status : int; body : string; content_type : string }

type latency_model = { base : float; per_kb : float }

let default_latency = { base = 0.05; per_kb = 0.002 }

type t = {
  clock : Virtual_clock.t;
  latency : latency_model;
  handlers : (string, request -> response) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  bytes : (string, int) Hashtbl.t;
}

let create ?(latency = default_latency) clock =
  {
    clock;
    latency;
    handlers = Hashtbl.create 8;
    counts = Hashtbl.create 8;
    bytes = Hashtbl.create 8;
  }

let clock t = t.clock

let register_host t ~host handler = Hashtbl.replace t.handlers host handler
let find_host t ~host = Hashtbl.find_opt t.handlers host

let ok ?(content_type = "application/xml") body = { status = 200; body; content_type }
let not_found path = { status = 404; body = "not found: " ^ path; content_type = "text/plain" }

let split_uri uri =
  let strip prefix s =
    let n = String.length prefix in
    if String.length s >= n && String.sub s 0 n = prefix then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match
    match strip "http://" uri with
    | Some rest -> Some rest
    | None -> strip "https://" uri
  with
  | None -> None
  | Some rest -> (
      match String.index_opt rest '/' with
      | None -> Some (rest, "/")
      | Some i ->
          Some (String.sub rest 0 i, String.sub rest i (String.length rest - i)))

let register_doc t ~uri ?(content_type = "application/xml") body =
  match split_uri uri with
  | None -> invalid_arg ("register_doc: bad uri " ^ uri)
  | Some (host, path) ->
      let previous = Hashtbl.find_opt t.handlers host in
      register_host t ~host (fun req ->
          if String.equal req.path path then ok ~content_type body
          else
            match previous with
            | Some h -> h req
            | None -> not_found req.path)

let bump table key delta =
  Hashtbl.replace table key (delta + Option.value ~default:0 (Hashtbl.find_opt table key))

let serve t ~meth ~body uri =
  match split_uri uri with
  | None -> { status = 400; body = "bad uri: " ^ uri; content_type = "text/plain" }
  | Some (host, path) -> (
      bump t.counts host 1;
      match Hashtbl.find_opt t.handlers host with
      | None -> { status = 502; body = "unknown host: " ^ host; content_type = "text/plain" }
      | Some handler ->
          let resp = handler { meth; uri; path; body } in
          bump t.bytes host (String.length resp.body);
          resp)

let round_trip_latency t resp =
  t.latency.base
  +. (t.latency.per_kb *. (float_of_int (String.length resp.body) /. 1024.))

let fetch t ?(meth = Get) ?body uri =
  let resp = serve t ~meth ~body uri in
  Virtual_clock.sleep t.clock (round_trip_latency t resp);
  resp

let fetch_async t ?(meth = Get) ?body uri callback =
  (* the request is served when the task fires, after the latency *)
  let delay_probe = t.latency.base in
  Virtual_clock.schedule t.clock ~delay:delay_probe (fun () ->
      let resp = serve t ~meth ~body uri in
      let extra = round_trip_latency t resp -. delay_probe in
      if extra > 0. then
        Virtual_clock.schedule t.clock ~delay:extra (fun () -> callback resp)
      else callback resp)

let request_count t ~host = Option.value ~default:0 (Hashtbl.find_opt t.counts host)
let total_requests t = Hashtbl.fold (fun _ c acc -> acc + c) t.counts 0
let bytes_served t ~host = Option.value ~default:0 (Hashtbl.find_opt t.bytes host)

let reset_stats t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.bytes
