(* End-to-end scenario tests: the paper's three applications (§6), the
   AJAX suggest page (§4.4), the multiplication-table equivalence, and
   the Gears-style offline store (§2.4). *)

module B = Xqib.Browser
module AS = Appserver.App_server

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let () = Minijs.Js_interp.install ()

let run_xq b src = Xqib.Page.run_xquery b b.B.top_window src
let run_str b src = Xdm_item.to_display_string (run_xq b src)

let mashup_tests =
  [
    t "mash-up: one click drives both languages (§6.2)" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let page = Scenarios.setup_mashup http in
        let b = B.create ~clock ~http () in
        Xqib.Page.load b page;
        let doc = B.document b in
        Dom.set_attribute
          (Option.get (Dom.get_element_by_id doc "searchbox"))
          (Xmlb.Qname.make "value") "zurich";
        B.click b (Option.get (Dom.get_element_by_id doc "search"));
        B.run b;
        (* JavaScript side updated the map *)
        let map = Option.get (Dom.get_element_by_id doc "map") in
        check (Alcotest.option Alcotest.string) "map location" (Some "zurich")
          (Dom.attribute_local map "location");
        (* XQuery side integrated the weather + webcams *)
        check Alcotest.string "temperature" "21 C, sunny"
          (run_str b "string(//div[@class='report']/p)");
        check Alcotest.string "webcams" "2" (run_str b "count(//div[@class='report']/img)"));
    t "mash-up routes to the regional weather service" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let page = Scenarios.setup_mashup http in
        let b = B.create ~clock ~http () in
        Xqib.Page.load b page;
        let doc = B.document b in
        Dom.set_attribute
          (Option.get (Dom.get_element_by_id doc "searchbox"))
          (Xmlb.Qname.make "value") "redwood";
        B.click b (Option.get (Dom.get_element_by_id doc "search"));
        B.run b;
        check Alcotest.int "us service called" 1
          (Http_sim.request_count http ~host:"weather-us.example");
        check Alcotest.int "eu service not called" 0
          (Http_sim.request_count http ~host:"weather-eu.example"));
  ]

let elsevier_tests =
  [
    t "reference 2.0: server page renders the article stats (§6.1)" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let e = Scenarios.make_elsevier ~journals:1 ~volumes:1 ~issues:1 ~articles:2 http in
        let html = AS.render_page e.Scenarios.server ~path:e.Scenarios.browse_page_path in
        let doc = Dom.of_string html in
        check Alcotest.int "articles listed" 2
          (List.length (Dom.get_elements_by_local_name doc "li"));
        check Alcotest.bool "stats rendered" true
          (let s = Dom.string_value doc in
           let re = Str.regexp ".*2 refs.*" in
           Str.string_match re (String.map (function '\n' -> ' ' | c -> c) s) 0));
    t "reference 2.0: migrated client renders the same entries" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let e = Scenarios.make_elsevier ~journals:1 ~volumes:1 ~issues:1 ~articles:2 http in
        let server_html =
          AS.render_page e.Scenarios.server ~path:e.Scenarios.browse_page_path
        in
        let server_lis =
          List.map Dom.string_value
            (Dom.get_elements_by_local_name (Dom.of_string server_html) "li")
        in
        let b = B.create ~clock ~http () in
        Xqib.Page.browse b ("http://" ^ AS.host e.Scenarios.server ^ e.Scenarios.client_page_path);
        B.run b;
        let client_lis =
          List.map Dom.string_value
            (Dom.get_elements_by_local_name (B.document b) "li")
        in
        check (Alcotest.list Alcotest.string) "same content" server_lis client_lis);
    t "reference 2.0: offload shape (server evals 0 after migration)" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let e = Scenarios.make_elsevier http in
        let b = B.create ~cache:true ~clock ~http () in
        Xqib.Page.browse b ("http://" ^ AS.host e.Scenarios.server ^ e.Scenarios.client_page_path);
        B.run b;
        for _ = 1 to 5 do
          ignore
            (run_xq b
               "count(rest:get('http://www.elsevier.example/docs/archive.xml')//article)")
        done;
        check Alcotest.int "no server evals" 0 (AS.evaluations e.Scenarios.server);
        check Alcotest.int "articles counted client-side" e.Scenarios.article_count
          (int_of_float
             (Xdm_item.item_number
                (List.hd
                   (run_xq b
                      "count(rest:get('http://www.elsevier.example/docs/archive.xml')//article)")))));
  ]

let suggest_tests =
  [
    t "suggest page narrows hints as the user types (§4.4)" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let page = Scenarios.setup_suggest http in
        let b = B.create ~clock ~http () in
        Xqib.Page.load b page;
        let doc = B.document b in
        let input = Option.get (Dom.get_element_by_id doc "text1") in
        let hint () = Dom.string_value (Option.get (Dom.get_element_by_id doc "txtHint")) in
        B.type_text b input "a";
        B.run b;
        check Alcotest.string "prefix a" "alice, albert" (hint ());
        B.type_text b input "lb";
        B.run b;
        check Alcotest.string "prefix alb" "albert" (hint ());
        check Alcotest.bool "async kept UI free" true (b.B.ui_blocked < 0.001));
  ]

let table_tests =
  [
    t "multiplication tables agree between JS and XQuery" (fun () ->
        let cells page =
          let b = B.create () in
          Xqib.Page.load b page;
          B.run b;
          List.map Dom.string_value
            (Dom.get_elements_by_local_name (B.document b) "td")
        in
        let js = cells (Scenarios.mult_table_js_page 7) in
        let xq = cells (Scenarios.mult_table_xquery_page 7) in
        check Alcotest.int "49 cells" 49 (List.length js);
        check (Alcotest.list Alcotest.string) "equal" js xq);
    t "class attributes agree too (even/odd shading)" (fun () ->
        let classes page =
          let b = B.create () in
          Xqib.Page.load b page;
          List.filter_map
            (fun n -> Dom.attribute_local n "class")
            (Dom.get_elements_by_local_name (B.document b) "td")
        in
        check
          (Alcotest.list Alcotest.string)
          "classes"
          (classes (Scenarios.mult_table_js_page 5))
          (classes (Scenarios.mult_table_xquery_page 5)));
  ]

let store_tests =
  [
    t "store put/get round trip from XQuery" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        ignore (run_xq b "browser:storePut('cfg', <config><k>v</k></config>)");
        check Alcotest.string "read back" "v"
          (run_str b "string(browser:storeGet('cfg')//k)"));
    t "store survives page reloads" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        ignore (run_xq b "browser:storePut('persist', <d>kept</d>)");
        Xqib.Page.load b "<html><body><p>new page</p></body></html>";
        check Alcotest.string "still there" "kept"
          (run_str b "string(browser:storeGet('persist'))"));
    t "store is mutable in place (local database)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        ignore (run_xq b "browser:storePut('db', <rows/>)");
        ignore (run_xq b "insert node <row n='1'/> into browser:storeGet('db')");
        ignore (run_xq b "insert node <row n='2'/> into browser:storeGet('db')");
        check Alcotest.string "two rows" "2" (run_str b "count(browser:storeGet('db')/row)"));
    t "store is per-origin" (fun () ->
        let b = B.create ~href:"http://a.example/" () in
        Xqib.Page.load b "<html><body/></html>";
        ignore (run_xq b "browser:storePut('secret', <s/>)");
        (* navigate the window to another origin; fresh page context *)
        Xqib.Windows.navigate b.B.top_window "http://evil.example/";
        Xqib.Page.load b "<html><body/></html>";
        check Alcotest.string "invisible" "0"
          (run_str b "count(browser:storeGet('secret'))"));
    t "store delete and list" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        ignore (run_xq b "browser:storePut('a', <a/>)");
        ignore (run_xq b "browser:storePut('b', <b/>)");
        check Alcotest.string "list" "a b" (run_str b "string-join(browser:storeList(), ' ')");
        check Alcotest.string "delete" "true" (run_str b "browser:storeDelete('a')");
        check Alcotest.string "list after" "b" (run_str b "string-join(browser:storeList(), ' ')"));
    t "offline: network fails, store keeps working (§2.4)" (fun () ->
        let b = B.create () in
        Http_sim.register_doc b.B.http ~uri:"http://h/x.xml" "<x/>";
        Xqib.Page.load b "<html><body/></html>";
        ignore (run_xq b "browser:storePut('local', <data>here</data>)");
        b.B.online <- false;
        (match run_xq b "rest:get('http://h/x.xml')" with
        | exception Xquery.Xq_error.Error e ->
            check Alcotest.string "code" "FODC0002" e.Xquery.Xq_error.code
        | _ -> Alcotest.fail "expected offline failure");
        check Alcotest.string "store still works" "here"
          (run_str b "string(browser:storeGet('local'))");
        check Alcotest.string "online flag" "false" (run_str b "browser:online()"));
  ]

let webservice_integration =
  [
    t "behind + web service: async RPC fills the page (§3.4 + §4.4)" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let _svc =
          Web_service.publish http
            ~source:
              {|module namespace ex = "www.example.ch" port:2001;
                declare function ex:mul($a, $b) { $a * $b };|}
        in
        let b = B.create ~clock ~http () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            import module namespace ab = "www.example.ch" at "http://localhost:2001/wsdl";
            declare updating function local:onResult($readyState, $result) {
              if ($readyState = 4)
              then replace value of node html//input[@name="textbox"]/@value
                   with string($result)
              else ()
            };
            { on event "stateChanged" behind ab:mul(2, 5)
              attach listener local:onResult }
            </script></head>
            <body><input name="textbox" value=""/></body></html>|};
        B.run b;
        let input = List.hd (Dom.get_elements_by_local_name (B.document b) "input") in
        check (Alcotest.option Alcotest.string) "10" (Some "10")
          (Dom.attribute_local input "value"));
  ]

let suite =
  mashup_tests @ elsevier_tests @ suggest_tests @ table_tests @ store_tests
  @ webservice_integration
