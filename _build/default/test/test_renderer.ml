(* The text renderer: block/inline flow, widgets, tables, wrapping,
   hidden elements, and its interplay with XQuery updates (render after
   update shows the change — the end of the Fig. 1 loop). *)

module R = Xqib.Renderer
module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let render ?options s = R.render ?options (Dom.of_string s)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  m = 0 || scan 0

let suite =
  [
    t "plain text flows" (fun () ->
        check Alcotest.string "flow" "hello world" (render "<p>hello world</p>"));
    t "inline elements do not break lines" (fun () ->
        check Alcotest.string "inline" "a b c" (render "<p>a <b>b</b> c</p>"));
    t "block elements break lines" (fun () ->
        check Alcotest.string "blocks" "one\ntwo" (render "<div><p>one</p><p>two</p></div>"));
    t "headings are underlined" (fun () ->
        let r = render "<body><h1>Title</h1>text</body>" in
        check Alcotest.bool "underline" true (contains r "Title\n=====");
        check Alcotest.bool "body text" true (contains r "text"));
    t "h2 uses dashes" (fun () ->
        check Alcotest.bool "dashes" true (contains (render "<h2>Sub</h2>") "Sub\n---"));
    t "list items get bullets" (fun () ->
        let r = render "<ul><li>alpha</li><li>beta</li></ul>" in
        check Alcotest.bool "alpha" true (contains r "* alpha");
        check Alcotest.bool "beta" true (contains r "* beta"));
    t "table rows align with pipes" (fun () ->
        let r = render "<table><tr><th>a</th><th>b</th></tr><tr><td>1</td><td>2</td></tr></table>" in
        check Alcotest.bool "header" true (contains r "| a | b |");
        check Alcotest.bool "row" true (contains r "| 1 | 2 |"));
    t "inputs and buttons draw as widgets" (fun () ->
        let r = render "<form><input value=\"abc\"/><button>Go</button></form>" in
        check Alcotest.bool "input" true (contains r "[abc");
        check Alcotest.bool "button" true (contains r "[ Go ]"));
    t "images show alt text" (fun () ->
        check Alcotest.bool "alt" true
          (contains (render "<p><img src=\"x.gif\" alt=\"a heart\"/></p>") "[img: a heart]"));
    t "links show their target" (fun () ->
        check Alcotest.bool "href" true
          (contains (render "<p><a href=\"http://x/\">go</a></p>") "<http://x/>"));
    t "script and style are not rendered" (fun () ->
        check Alcotest.string "empty" ""
          (render "<head><script>var x = 1;</script><style>p { }</style></head>"));
    t "display:none hides" (fun () ->
        check Alcotest.string "hidden" "shown"
          (render "<body><div style=\"display: none\">secret</div><p>shown</p></body>"));
    t "show_hidden reveals" (fun () ->
        let r =
          render
            ~options:{ R.default_options with R.show_hidden = true }
            "<body><div style=\"display: none\">secret</div></body>"
        in
        check Alcotest.string "revealed" "secret" r);
    t "long text wraps at the width" (fun () ->
        let words = String.concat " " (List.init 30 (fun i -> Printf.sprintf "w%02d" i)) in
        let r = render ~options:{ R.default_options with R.width = 20 } ("<p>" ^ words ^ "</p>") in
        List.iter
          (fun line ->
            check Alcotest.bool ("line fits: " ^ line) true (String.length line <= 20))
          (String.split_on_char '\n' r));
    t "pre preserves line structure" (fun () ->
        let r = render "<pre>line1\nline2</pre>" in
        check Alcotest.bool "two lines" true (contains r "line1" && contains r "line2"));
    t "hr draws a rule" (fun () ->
        check Alcotest.bool "rule" true (contains (render "<body><hr/></body>") "------"));
    t "line_count" (fun () ->
        check Alcotest.bool "several" true
          (R.line_count (Dom.of_string "<ul><li>a</li><li>b</li><li>c</li></ul>") >= 3));
    t "render reflects XQuery updates (Fig. 1 loop)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:add($evt, $obj) {
              insert node <li>added by listener</li> into //ul
            };
            on event "onclick" at //button attach listener local:add
            </script></head>
            <body><button id="b">Add</button><ul><li>first</li></ul></body></html>|};
        let before = R.render (B.document b) in
        check Alcotest.bool "not yet" false (contains before "added by listener");
        B.click b (Option.get (Dom.get_element_by_id (B.document b) "b"));
        let after = R.render (B.document b) in
        check Alcotest.bool "rendered after update" true (contains after "added by listener"));
  ]
