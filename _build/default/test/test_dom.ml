(* DOM: construction, navigation, order, mutation, observers, events. *)

open Xmlb

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let qn = Qname.make

let sample () =
  Dom.of_string "<root><a id=\"1\">x</a><b id=\"2\"><c/>y</b><a id=\"3\"/></root>"

let root_el doc = List.hd (Dom.children doc)

let construction_tests =
  [
    t "of_string builds a document" (fun () ->
        let doc = sample () in
        check Alcotest.bool "document" true (Dom.kind doc = Dom.Document);
        check Alcotest.int "one root" 1 (List.length (Dom.children doc)));
    t "kinds" (fun () ->
        check Alcotest.bool "el" true (Dom.kind (Dom.create_element (qn "a")) = Dom.Element);
        check Alcotest.bool "text" true (Dom.kind (Dom.create_text "t") = Dom.Text);
        check Alcotest.bool "attr" true (Dom.kind (Dom.create_attribute (qn "a") "v") = Dom.Attribute);
        check Alcotest.bool "comment" true (Dom.kind (Dom.create_comment "c") = Dom.Comment);
        check Alcotest.bool "pi" true (Dom.kind (Dom.create_pi ~target:"t" "d") = Dom.Processing_instruction));
    t "ids are unique and increasing" (fun () ->
        let a = Dom.create_element (qn "a") in
        let b = Dom.create_element (qn "b") in
        check Alcotest.bool "increasing" true (Dom.id b > Dom.id a));
    t "element with attrs" (fun () ->
        let el = Dom.create_element ~attrs:[ (qn "x", "1"); (qn "y", "2") ] (qn "a") in
        check (Alcotest.option Alcotest.string) "x" (Some "1") (Dom.attribute el (qn "x"));
        check Alcotest.int "count" 2 (List.length (Dom.attributes el)));
    t "clone is deep and fresh" (fun () ->
        let doc = sample () in
        let copy = Dom.clone doc in
        check Alcotest.string "same serialization" (Dom.serialize doc) (Dom.serialize copy);
        check Alcotest.bool "different identity" false (Dom.equal doc copy);
        (* mutating the copy leaves the original unchanged *)
        Dom.append_child ~parent:(root_el copy) (Dom.create_text "zzz");
        check Alcotest.bool "original untouched" false
          (String.equal (Dom.serialize doc) (Dom.serialize copy)));
  ]

let navigation_tests =
  [
    t "string_value concatenates descendant text" (fun () ->
        check Alcotest.string "sv" "xy" (Dom.string_value (sample ())));
    t "string_value skips comments and PIs" (fun () ->
        let d = Dom.of_string "<a>1<!--no--><?p no?><b>2</b></a>" in
        check Alcotest.string "sv" "12" (Dom.string_value d));
    t "descendants in document order" (fun () ->
        let doc = sample () in
        let names =
          List.filter_map
            (fun n -> Option.map (fun q -> q.Qname.local) (Dom.name n))
            (Dom.descendants doc)
        in
        check (Alcotest.list Alcotest.string) "order" [ "root"; "a"; "b"; "c"; "a" ] names);
    t "ancestors nearest first" (fun () ->
        let doc = sample () in
        let c = List.hd (Dom.get_elements_by_local_name doc "c") in
        let locals =
          List.map
            (fun n ->
              match Dom.name n with Some q -> q.Qname.local | None -> "#doc")
            (Dom.ancestors c)
        in
        check (Alcotest.list Alcotest.string) "ancestors" [ "b"; "root"; "#doc" ] locals);
    t "siblings" (fun () ->
        let doc = sample () in
        let b = List.hd (Dom.get_elements_by_local_name doc "b") in
        check Alcotest.int "following" 1 (List.length (Dom.following_siblings b));
        check Alcotest.int "preceding" 1 (List.length (Dom.preceding_siblings b)));
    t "compare_order follows document order" (fun () ->
        let doc = sample () in
        match Dom.get_elements_by_local_name doc "a" with
        | [ a1; a3 ] ->
            check Alcotest.bool "a1 < a3" true (Dom.compare_order a1 a3 < 0);
            check Alcotest.bool "a3 > a1" true (Dom.compare_order a3 a1 > 0);
            check Alcotest.int "self" 0 (Dom.compare_order a1 a1)
        | _ -> Alcotest.fail "expected two a elements");
    t "attributes order before children" (fun () ->
        let doc = sample () in
        let a1 = List.hd (Dom.get_elements_by_local_name doc "a") in
        let attr = List.hd (Dom.attributes a1) in
        let text = List.hd (Dom.children a1) in
        check Alcotest.bool "attr < text" true (Dom.compare_order attr text < 0);
        check Alcotest.bool "el < attr" true (Dom.compare_order a1 attr < 0));
    t "is_ancestor" (fun () ->
        let doc = sample () in
        let c = List.hd (Dom.get_elements_by_local_name doc "c") in
        check Alcotest.bool "doc ancestor of c" true (Dom.is_ancestor ~ancestor:doc c);
        check Alcotest.bool "c not ancestor of doc" false (Dom.is_ancestor ~ancestor:c doc));
    t "get_element_by_id" (fun () ->
        let doc = sample () in
        match Dom.get_element_by_id doc "2" with
        | Some el ->
            check Alcotest.string "b" "b" (Option.get (Dom.name el)).Qname.local
        | None -> Alcotest.fail "not found");
    t "root of detached node is itself" (fun () ->
        let el = Dom.create_element (qn "solo") in
        check Alcotest.bool "self" true (Dom.equal el (Dom.root el)));
  ]

let mutation_tests =
  [
    t "append_child sets parent" (fun () ->
        let p = Dom.create_element (qn "p") in
        let c = Dom.create_text "t" in
        Dom.append_child ~parent:p c;
        check Alcotest.bool "parent" true
          (match Dom.parent c with Some x -> Dom.equal x p | None -> false));
    t "insert_first" (fun () ->
        let p = Dom.of_string "<p><a/></p>" in
        let p = root_el p in
        Dom.insert_first ~parent:p (Dom.create_element (qn "z"));
        check Alcotest.string "first" "z"
          (Option.get (Dom.name (List.hd (Dom.children p)))).Qname.local);
    t "insert_before and after" (fun () ->
        let doc = Dom.of_string "<p><mid/></p>" in
        let mid = List.hd (Dom.get_elements_by_local_name doc "mid") in
        Dom.insert_before ~sibling:mid (Dom.create_element (qn "pre"));
        Dom.insert_after ~sibling:mid (Dom.create_element (qn "post"));
        check Alcotest.string "layout" "<p><pre/><mid/><post/></p>"
          (Dom.serialize doc));
    t "remove" (fun () ->
        let doc = sample () in
        let b = List.hd (Dom.get_elements_by_local_name doc "b") in
        Dom.remove b;
        check Alcotest.int "two left" 2 (List.length (Dom.children (root_el doc)));
        check Alcotest.bool "no parent" true (Dom.parent b = None));
    t "re-append moves a node" (fun () ->
        let doc = Dom.of_string "<r><x><m/></x><y/></r>" in
        let m = List.hd (Dom.get_elements_by_local_name doc "m") in
        let y = List.hd (Dom.get_elements_by_local_name doc "y") in
        Dom.append_child ~parent:y m;
        check Alcotest.string "moved" "<r><x/><y><m/></y></r>" (Dom.serialize doc));
    t "replace with several nodes" (fun () ->
        let doc = Dom.of_string "<r><old/></r>" in
        let old = List.hd (Dom.get_elements_by_local_name doc "old") in
        Dom.replace old [ Dom.create_element (qn "n1"); Dom.create_element (qn "n2") ];
        check Alcotest.string "replaced" "<r><n1/><n2/></r>" (Dom.serialize doc));
    t "replace with empty deletes" (fun () ->
        let doc = Dom.of_string "<r><old/></r>" in
        let old = List.hd (Dom.get_elements_by_local_name doc "old") in
        Dom.replace old [];
        check Alcotest.string "gone" "<r/>" (Dom.serialize doc));
    t "set_value on text" (fun () ->
        let txt = Dom.create_text "a" in
        Dom.set_value txt "b";
        check (Alcotest.option Alcotest.string) "b" (Some "b") (Dom.value txt));
    t "set_value on element replaces children (XQUF)" (fun () ->
        let doc = Dom.of_string "<r><a/><b/></r>" in
        Dom.set_value (root_el doc) "flat";
        check Alcotest.string "text only" "<r>flat</r>" (Dom.serialize doc));
    t "rename element and attribute" (fun () ->
        let doc = Dom.of_string "<r x=\"1\"/>" in
        let r = root_el doc in
        Dom.rename r (qn "s");
        let attr = List.hd (Dom.attributes r) in
        Dom.rename attr (qn "y");
        check Alcotest.string "renamed" "<s y=\"1\"/>" (Dom.serialize doc));
    t "rename text fails" (fun () ->
        match Dom.rename (Dom.create_text "t") (qn "x") with
        | exception Dom.Dom_error _ -> ()
        | () -> Alcotest.fail "expected Dom_error");
    t "set_attribute replaces existing" (fun () ->
        let el = Dom.create_element ~attrs:[ (qn "x", "1") ] (qn "a") in
        Dom.set_attribute el (qn "x") "2";
        check (Alcotest.option Alcotest.string) "2" (Some "2") (Dom.attribute el (qn "x"));
        check Alcotest.int "still one" 1 (List.length (Dom.attributes el)));
    t "remove_attribute" (fun () ->
        let el = Dom.create_element ~attrs:[ (qn "x", "1") ] (qn "a") in
        Dom.remove_attribute el (qn "x");
        check Alcotest.int "none" 0 (List.length (Dom.attributes el)));
    t "cannot insert attribute as child" (fun () ->
        let p = Dom.create_element (qn "p") in
        match Dom.append_child ~parent:p (Dom.create_attribute (qn "a") "v") with
        | exception Dom.Dom_error _ -> ()
        | () -> Alcotest.fail "expected Dom_error");
    t "cannot give children to text" (fun () ->
        let txt = Dom.create_text "t" in
        match Dom.append_child ~parent:txt (Dom.create_text "u") with
        | exception Dom.Dom_error _ -> ()
        | () -> Alcotest.fail "expected Dom_error");
  ]

let observer_tests =
  [
    t "children change notifies" (fun () ->
        let doc = sample () in
        let hits = ref 0 in
        let _ = Dom.observe ~root:doc (fun _ -> incr hits) in
        Dom.append_child ~parent:(root_el doc) (Dom.create_text "t");
        check Alcotest.bool "notified" true (!hits > 0));
    t "unobserve stops notifications" (fun () ->
        let doc = sample () in
        let hits = ref 0 in
        let id = Dom.observe ~root:doc (fun _ -> incr hits) in
        Dom.unobserve id;
        Dom.append_child ~parent:(root_el doc) (Dom.create_text "t");
        check Alcotest.int "no hits" 0 !hits);
    t "observer scoped to its tree" (fun () ->
        let doc = sample () in
        let other = Dom.of_string "<other/>" in
        let hits = ref 0 in
        let id = Dom.observe ~root:doc (fun _ -> incr hits) in
        Dom.append_child ~parent:(root_el other) (Dom.create_text "t");
        check Alcotest.int "not notified" 0 !hits;
        Dom.unobserve id);
    t "value change notifies with node" (fun () ->
        let doc = sample () in
        let seen = ref None in
        let id =
          Dom.observe ~root:doc (fun m ->
              match m with Dom.Value_changed n -> seen := Some n | _ -> ())
        in
        let a = List.hd (Dom.get_elements_by_local_name doc "a") in
        Dom.set_value a "changed";
        check Alcotest.bool "saw value change" true (!seen <> None);
        Dom.unobserve id);
  ]

let event_tests =
  let fired = ref [] in
  let record tag = fun _ -> fired := tag :: !fired in
  [
    t "listener fires at target" (fun () ->
        fired := [];
        let doc = Dom.of_string "<r><btn/></r>" in
        let btn = List.hd (Dom.get_elements_by_local_name doc "btn") in
        let _ = Dom_event.add_listener btn ~event_type:"onclick" (record "btn") in
        ignore (Dom_event.fire ~event_type:"onclick" ~target:btn ());
        check (Alcotest.list Alcotest.string) "fired" [ "btn" ] !fired);
    t "bubbling reaches ancestors in order" (fun () ->
        fired := [];
        let doc = Dom.of_string "<r><mid><btn/></mid></r>" in
        let btn = List.hd (Dom.get_elements_by_local_name doc "btn") in
        let mid = List.hd (Dom.get_elements_by_local_name doc "mid") in
        let r = List.hd (Dom.get_elements_by_local_name doc "r") in
        let _ = Dom_event.add_listener r ~event_type:"onclick" (record "r") in
        let _ = Dom_event.add_listener mid ~event_type:"onclick" (record "mid") in
        let _ = Dom_event.add_listener btn ~event_type:"onclick" (record "btn") in
        ignore (Dom_event.fire ~event_type:"onclick" ~target:btn ());
        check (Alcotest.list Alcotest.string) "bubble order" [ "r"; "mid"; "btn" ] !fired);
    t "capture phase runs top-down before target" (fun () ->
        fired := [];
        let doc = Dom.of_string "<r><btn/></r>" in
        let btn = List.hd (Dom.get_elements_by_local_name doc "btn") in
        let r = List.hd (Dom.get_elements_by_local_name doc "r") in
        let _ = Dom_event.add_listener r ~event_type:"ev" ~capture:true (record "r-capture") in
        let _ = Dom_event.add_listener btn ~event_type:"ev" (record "btn") in
        ignore (Dom_event.fire ~event_type:"ev" ~target:btn ());
        check (Alcotest.list Alcotest.string) "order" [ "btn"; "r-capture" ] !fired);
    t "stop_propagation halts bubbling" (fun () ->
        fired := [];
        let doc = Dom.of_string "<r><btn/></r>" in
        let btn = List.hd (Dom.get_elements_by_local_name doc "btn") in
        let r = List.hd (Dom.get_elements_by_local_name doc "r") in
        let _ =
          Dom_event.add_listener btn ~event_type:"ev" (fun e ->
              record "btn" e;
              Dom_event.stop_propagation e)
        in
        let _ = Dom_event.add_listener r ~event_type:"ev" (record "r") in
        ignore (Dom_event.fire ~event_type:"ev" ~target:btn ());
        check (Alcotest.list Alcotest.string) "only btn" [ "btn" ] !fired);
    t "prevent_default reflected in dispatch result" (fun () ->
        let doc = Dom.of_string "<btn/>" in
        let btn = root_el doc in
        let _ =
          Dom_event.add_listener btn ~event_type:"ev" (fun e -> Dom_event.prevent_default e)
        in
        check Alcotest.bool "false" false (Dom_event.fire ~event_type:"ev" ~target:btn ()));
    t "event type filters listeners" (fun () ->
        fired := [];
        let doc = Dom.of_string "<btn/>" in
        let btn = root_el doc in
        let _ = Dom_event.add_listener btn ~event_type:"a" (record "a") in
        let _ = Dom_event.add_listener btn ~event_type:"b" (record "b") in
        ignore (Dom_event.fire ~event_type:"b" ~target:btn ());
        check (Alcotest.list Alcotest.string) "only b" [ "b" ] !fired);
    t "named listener replaces same name" (fun () ->
        let doc = Dom.of_string "<btn/>" in
        let btn = root_el doc in
        let _ = Dom_event.add_listener btn ~event_type:"ev" ~name:"L" (fun _ -> ()) in
        let _ = Dom_event.add_listener btn ~event_type:"ev" ~name:"L" (fun _ -> ()) in
        check Alcotest.int "one listener" 1 (Dom_event.listener_count btn));
    t "remove_named_listener detaches" (fun () ->
        fired := [];
        let doc = Dom.of_string "<btn/>" in
        let btn = root_el doc in
        let _ = Dom_event.add_listener btn ~event_type:"ev" ~name:"L" (record "l") in
        let removed = Dom_event.remove_named_listener btn ~event_type:"ev" ~name:"L" in
        ignore (Dom_event.fire ~event_type:"ev" ~target:btn ());
        check Alcotest.int "one removed" 1 removed;
        check (Alcotest.list Alcotest.string) "no firing" [] !fired);
    t "remove_listener by id" (fun () ->
        fired := [];
        let doc = Dom.of_string "<btn/>" in
        let btn = root_el doc in
        let id = Dom_event.add_listener btn ~event_type:"ev" (record "x") in
        Dom_event.remove_listener id;
        ignore (Dom_event.fire ~event_type:"ev" ~target:btn ());
        check (Alcotest.list Alcotest.string) "no firing" [] !fired);
    t "event detail carried" (fun () ->
        let doc = Dom.of_string "<btn/>" in
        let btn = root_el doc in
        let seen = ref None in
        let _ =
          Dom_event.add_listener btn ~event_type:"ev" (fun e ->
              seen := List.assoc_opt "button" e.Dom_event.detail)
        in
        ignore (Dom_event.fire ~detail:[ ("button", "1") ] ~event_type:"ev" ~target:btn ());
        check (Alcotest.option Alcotest.string) "button" (Some "1") !seen);
  ]

let suite = construction_tests @ navigation_tests @ mutation_tests @ observer_tests @ event_tests
