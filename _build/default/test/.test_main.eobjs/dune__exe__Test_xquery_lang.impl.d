test/test_xquery_lang.ml: Alcotest Engine Lexer List Xdm_atomic Xdm_item Xq_error Xquery
