test/test_windows.ml: Alcotest Dom Http_sim List Option Xdm_item Xmlb Xqib
