test/test_browser.ml: Alcotest Dom Http_sim List Option Str String Virtual_clock Xdm_item Xq_error Xqib Xquery
