test/test_net.ml: Alcotest Doc_store Dom Engine Http_sim List Rest String Virtual_clock Web_service Xdm_datetime Xdm_item Xq_error Xquery
