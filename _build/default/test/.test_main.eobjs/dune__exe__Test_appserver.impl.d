test/test_appserver.ml: Alcotest Appserver Doc_store Dom Http_sim List Minijs Option Str String Virtual_clock Xqib Xquery
