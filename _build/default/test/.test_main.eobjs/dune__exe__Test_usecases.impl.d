test/test_usecases.ml: Alcotest Engine Printf Xdm_item Xquery
