test/test_renderer.ml: Alcotest Dom List Option Printf String Xqib
