test/test_xmlb.ml: Alcotest Dom List Option Qname Str String Xdm_item Xml_escape Xml_parser Xml_serializer Xmlb Xquery
