test/test_functions.ml: Alcotest Engine Xdm_item Xq_error Xquery
