test/test_properties.ml: Alcotest Char Dom Fun List Minijs Printf QCheck QCheck_alcotest Qname String Xdm_atomic Xdm_datetime Xdm_duration Xdm_item Xml_escape Xml_parser Xml_serializer Xmlb Xquery
