test/test_scripting.ml: Alcotest Ast Engine Optimizer Parser Xdm_atomic Xdm_item Xmlb Xq_error Xquery
