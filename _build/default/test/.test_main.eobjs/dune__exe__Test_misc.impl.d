test/test_misc.ml: Alcotest Appserver Dom Engine Functions Http_sim List Minijs Option Printf Str String Style_util Virtual_clock Xdm_item Xmlb Xq_error Xqib Xquery
