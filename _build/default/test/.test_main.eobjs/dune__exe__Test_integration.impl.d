test/test_integration.ml: Alcotest Appserver Dom Http_sim List Minijs Option Scenarios Str String Virtual_clock Web_service Xdm_item Xmlb Xqib Xquery
