test/test_xdm.ml: Alcotest Dom Float List Xdm_atomic Xdm_datetime Xdm_duration Xdm_item Xmlb
