test/test_minijs.ml: Alcotest Dom List Minijs Option Virtual_clock Xmlb Xqib
