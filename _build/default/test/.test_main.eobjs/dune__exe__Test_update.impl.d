test/test_update.ml: Alcotest Engine Printf Xdm_item Xq_error Xquery
