test/test_dom.ml: Alcotest Dom Dom_event List Option Qname String Xmlb
