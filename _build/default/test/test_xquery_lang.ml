(* XQuery language: lexer, parser shapes, core expression evaluation. *)

open Xquery
module A = Xdm_atomic
module I = Xdm_item

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let run src = Engine.eval_string src
let run_str src = I.to_display_string (run src)

let expect_error code src =
  match Engine.eval_string src with
  | exception Xq_error.Error e ->
      check Alcotest.string ("error code of " ^ src) code e.Xq_error.code
  | r -> Alcotest.failf "%s: expected error %s, got %s" src code (I.to_display_string r)

let eq name expected src = t name (fun () -> check Alcotest.string src expected (run_str src))

(* ---------- lexer ---------- *)

let lexer_tests =
  let toks src =
    let lx = Lexer.create src in
    let rec go acc =
      match Lexer.next lx with
      | Lexer.T_eof -> List.rev acc
      | tok -> go (Lexer.token_to_string tok :: acc)
    in
    go []
  in
  [
    t "numbers lex by kind" (fun () ->
        let lx = Lexer.create "1 1.5 .5 2e3 1.5E-2" in
        check Alcotest.bool "int" true (Lexer.next lx = Lexer.T_integer 1);
        check Alcotest.bool "dec" true (Lexer.next lx = Lexer.T_decimal 1.5);
        check Alcotest.bool "dec2" true (Lexer.next lx = Lexer.T_decimal 0.5);
        check Alcotest.bool "dbl" true (Lexer.next lx = Lexer.T_double 2000.);
        check Alcotest.bool "dbl2" true (Lexer.next lx = Lexer.T_double 0.015));
    t "strings with doubled quotes and entities" (fun () ->
        let lx = Lexer.create "\"a\"\"b\" 'c''d' \"x&amp;y\"" in
        check Alcotest.bool "dq" true (Lexer.next lx = Lexer.T_string "a\"b");
        check Alcotest.bool "sq" true (Lexer.next lx = Lexer.T_string "c'd");
        check Alcotest.bool "ent" true (Lexer.next lx = Lexer.T_string "x&y"));
    t "comments nest" (fun () ->
        check (Alcotest.list Alcotest.string) "tokens" [ "1"; "+"; "2" ]
          (toks "1 (: outer (: inner :) still :) + 2"));
    t "variables with prefixes" (fun () ->
        let lx = Lexer.create "$x $ns:y" in
        check Alcotest.bool "plain" true (Lexer.next lx = Lexer.T_var ("x", None));
        check Alcotest.bool "prefixed" true (Lexer.next lx = Lexer.T_var ("y", Some "ns")));
    t "qnames vs axis separator" (fun () ->
        check (Alcotest.list Alcotest.string) "axis" [ "child"; "::"; "a" ] (toks "child::a");
        check (Alcotest.list Alcotest.string) "qname" [ "p:a" ] (toks "p:a"));
    t "wildcards" (fun () ->
        check (Alcotest.list Alcotest.string) "nsw" [ "p:*" ] (toks "p:*");
        check (Alcotest.list Alcotest.string) "lw" [ "*:x" ] (toks "*:x"));
    t "operators" (fun () ->
        check (Alcotest.list Alcotest.string) "ops"
          [ "a"; "<="; "b"; "!="; "c"; ">>"; "d"; ":=" ]
          (toks "a <= b != c >> d :="));
    t "dots" (fun () ->
        check (Alcotest.list Alcotest.string) "dots" [ "."; ".."; "/"; "//" ] (toks ". .. / //"));
    t "snapshot restore" (fun () ->
        let lx = Lexer.create "1 2 3" in
        let _ = Lexer.next lx in
        let snap = Lexer.save lx in
        let _ = Lexer.next lx in
        Lexer.restore lx snap;
        check Alcotest.bool "back to 2" true (Lexer.next lx = Lexer.T_integer 2));
    t "unterminated string is a syntax error" (fun () ->
        match toks "\"abc" with
        | exception Xq_error.Error { Xq_error.code = "XPST0003"; _ } -> ()
        | _ -> Alcotest.fail "expected XPST0003");
  ]

(* ---------- arithmetic & comparisons ---------- *)

let arithmetic_tests =
  [
    eq "precedence" "7" "1 + 2 * 3";
    eq "parens" "9" "(1 + 2) * 3";
    eq "div is decimal" "2.5" "5 div 2";
    eq "idiv truncates" "2" "5 idiv 2";
    eq "mod" "1" "5 mod 2";
    eq "unary minus" "-3" "-(1 + 2)";
    eq "double unary" "3" "--3";
    eq "decimal arithmetic" "3.5" "1.25 + 2.25";
    eq "double exponent" "2500" "2.5e3";
    eq "empty operand yields empty" "" "() + 1";
    eq "untyped operand coerces" "3" "let $d := <a>1</a> return $d + 2";
    t "arith type error" (fun () -> expect_error "XPTY0004" "'a' + 1");
    t "divide by zero" (fun () -> expect_error "FOAR0001" "1 div 0");
    eq "range" "1 2 3 4" "1 to 4";
    eq "empty range" "" "4 to 1";
    eq "range over vars" "5" "count((1 to 5)[. le 5])";
  ]

let comparison_tests =
  [
    eq "general eq over sequences" "true" "(1, 2, 3) = 2";
    eq "general eq false" "false" "(1, 2, 3) = 9";
    eq "general ne exists semantics" "true" "(1, 2) != 2";
    eq "value comparison" "true" "2 eq 2";
    eq "value lt" "true" "1 lt 2";
    eq "string compare" "true" "'abc' lt 'abd'";
    eq "untyped vs number in general comp" "true" "<a>5</a> = 5";
    eq "untyped vs string in general comp" "true" "<a>x</a> = 'x'";
    eq "empty value comp is empty" "" "() eq 1";
    t "value comp on two items fails" (fun () -> expect_error "XPTY0004" "(1,2) eq 1");
    eq "node is" "true" "let $a := <a/> return $a is $a";
    eq "node is false for copies" "false" "<a/> is <a/>";
    eq "node precedes" "true"
      "let $d := <r><a/><b/></r> return ($d/a) << ($d/b)";
    eq "node follows" "true"
      "let $d := <r><a/><b/></r> return ($d/b) >> ($d/a)";
    eq "NaN never equal" "false" "number('x') = number('x')";
    eq "and or" "true" "1 = 1 and (2 = 3 or 4 = 4)";
    eq "and short circuits" "false" "false() and (1 div 0 = 1)";
    eq "or short circuits" "true" "true() or (1 div 0 = 1)";
  ]

(* ---------- FLWOR ---------- *)

let flwor_tests =
  [
    eq "for over literals" "2 4 6" "for $x in (1, 2, 3) return $x * 2";
    eq "for with at" "1:a 2:b" "for $x at $i in ('a','b') return concat($i, ':', $x)";
    eq "nested for" "11 21 12 22" "for $x in (1,2), $y in (10,20) return $y + $x";
    eq "let binding" "30" "let $x := 10 let $y := 20 return $x + $y";
    eq "let shadowing" "2" "let $x := 1 let $x := 2 return $x";
    eq "where filters" "2 4" "for $x in 1 to 5 where $x mod 2 = 0 return $x";
    eq "order by ascending" "1 2 3" "for $x in (3,1,2) order by $x return $x";
    eq "order by descending" "3 2 1" "for $x in (3,1,2) order by $x descending return $x";
    eq "order by string key" "a b c"
      "for $x in ('b','c','a') order by $x return $x";
    eq "order by two keys" "a1 a2 b1"
      "for $p in (('b',1),('a',2),('a',1)) return () , for $x in ('b1','a2','a1') order by substring($x,1,1), substring($x,2) return $x";
    eq "order by empty least default" "1" "(for $x in (1, 3) order by (if ($x = 1) then () else $x) return $x)[1] cast as xs:string";
    eq "order by empty greatest" "3"
      "(for $x in (1, 3) order by (if ($x = 1) then () else $x) empty greatest return $x)[1] cast as xs:string";
    eq "stable sort preserves input order of ties" "b a"
      "for $x in ('b','a') order by string-length($x) return $x";
    eq "positional variable with order" "2 1"
      "for $x at $i in ('x','y') order by $x descending return $i";
    eq "for over path" "laptop mouse"
      "let $d := <ps><p><n>laptop</n></p><p><n>mouse</n></p></ps> for $p in $d/p return string($p/n)";
    eq "typed let coerces untyped" "6"
      "let $x as xs:integer := xs:untypedAtomic('6') return $x";
    t "typed let rejects wrong type" (fun () ->
        expect_error "XPTY0004" "let $x as xs:integer := 'nope' return $x");
  ]

let quantified_typeswitch_tests =
  [
    eq "some true" "true" "some $x in (1,2,3) satisfies $x = 2";
    eq "some false" "false" "some $x in (1,2,3) satisfies $x = 9";
    eq "every true" "true" "every $x in (2,4) satisfies $x mod 2 = 0";
    eq "every false" "false" "every $x in (2,3) satisfies $x mod 2 = 0";
    eq "every over empty is true" "true" "every $x in () satisfies false()";
    eq "some over empty is false" "false" "some $x in () satisfies true()";
    eq "multi-variable quantifier" "true"
      "some $x in (1,2), $y in (2,3) satisfies $x = $y";
    eq "typeswitch picks case" "int"
      "typeswitch (1) case xs:integer return 'int' case xs:string return 'str' default return 'other'";
    eq "typeswitch default" "other"
      "typeswitch (<a/>) case xs:integer return 'int' default return 'other'";
    eq "typeswitch node kind" "element"
      "typeswitch (<a/>) case element() return 'element' case text() return 'text' default return 'other'";
    eq "typeswitch case variable" "5"
      "typeswitch (5) case $i as xs:integer return $i default return 0";
    eq "if then else" "yes" "if (1 = 1) then 'yes' else 'no'";
    eq "if on node sequence ebv" "yes" "if (<a/>) then 'yes' else 'no'";
  ]

(* ---------- paths ---------- *)

let doc_src =
  "let $d := <lib><book year='2001'><title>AAA</title><author>X</author></book>\
   <book year='2003'><title>BBB</title><author>Y</author><author>Z</author></book></lib> return "

let path_tests =
  [
    eq "child step" "2" (doc_src ^ "count($d/book)");
    eq "descendant //" "3" (doc_src ^ "count($d//author)");
    eq "attribute axis" "2001 2003" (doc_src ^ "string-join($d/book/@year, ' ')");
    eq "abbreviated attribute" "2001" (doc_src ^ "string($d/book[1]/@year)");
    eq "predicate by position" "BBB" (doc_src ^ "string($d/book[2]/title)");
    eq "predicate last()" "BBB" (doc_src ^ "string($d/book[last()]/title)");
    eq "predicate by attribute" "AAA" (doc_src ^ "string($d/book[@year='2001']/title)");
    eq "predicate by child value" "2003" (doc_src ^ "string($d/book[title='BBB']/@year)");
    eq "multiple predicates" "1" (doc_src ^ "count($d/book[author='Y'][title='BBB'])");
    eq "wildcard" "2" (doc_src ^ "count($d/*)");
    eq "parent axis" "lib" (doc_src ^ "name($d/book[1]/..)");
    eq "ancestor axis" "3" (doc_src ^ "count($d//title[1]/ancestor::*)");
    eq "self axis with test" "1" (doc_src ^ "count($d/self::lib)");
    eq "self axis failing test" "0" (doc_src ^ "count($d/self::other)");
    eq "following-sibling" "1" (doc_src ^ "count($d/book[1]/following-sibling::book)");
    eq "preceding-sibling" "0" (doc_src ^ "count($d/book[1]/preceding-sibling::book)");
    eq "following axis" "4"
      (doc_src ^ "count($d/book[1]/following::*)");
    eq "preceding axis result in document order" "book"
      (doc_src ^ "name(($d/book[2]/author[1]/preceding::*)[1])");
    eq "descendant-or-self" "8" (doc_src ^ "count($d/descendant-or-self::*)");
    eq "text() test" "AAA" (doc_src ^ "string(($d//title/text())[1])");
    eq "node() includes text" "1" (doc_src ^ "count($d/book[1]/title/node())");
    eq "document order of union result" "AAA BBB"
      (doc_src ^ "string-join(for $t in ($d/book[2]/title | $d/book[1]/title) return string($t), ' ')");
    eq "path dedups" "2" (doc_src ^ "count(($d/book, $d/book)/title/..)");
    eq "reverse axis predicate counts from nearest" "book"
      (doc_src ^ "name(($d//author)[1]/ancestor::*[1])");
    eq "attribute node string value" "2001"
      (doc_src ^ "string($d/book[1]/attribute::year)");
    eq "comparison in predicate with position" "AAA"
      (doc_src ^ "string($d/book[position() = 1]/title)");
    eq "boolean predicate keeps all matching" "2"
      (doc_src ^ "count($d/book[@year])");
    eq "kind test element(name)" "1" (doc_src ^ "count($d/element(book)[1])");
    t "path over atomic fails" (fun () -> expect_error "XPTY0004" "(1)/a");
    t "mixed node/atomic path result fails" (fun () ->
        expect_error "XPTY0018" "<a><b/></a>/(if (b) then (b, 1) else 1)");
  ]

(* ---------- constructors ---------- *)

let constructor_tests =
  [
    eq "direct element with text" "<r>hi</r>" "<r>hi</r>";
    eq "enclosed expression" "<r>2</r>" "<r>{1 + 1}</r>";
    eq "adjacent atomics joined by space" "<r>1 2 3</r>" "<r>{1, 2, 3}</r>";
    eq "attribute from expression" "<r a=\"3\"/>" "<r a=\"{1 + 2}\"/>";
    eq "attribute mixing literal and expr" "<r a=\"v3w\"/>" "<r a=\"v{3}w\"/>";
    eq "nested constructors" "<a><b>1</b></a>" "<a><b>{1}</b></a>";
    eq "construction copies nodes" "false"
      "let $x := <i/> let $y := <o>{$x}</o> return $y/i is $x";
    eq "curly escapes" "<r>{}</r>" "<r>{{}}</r>";
    eq "computed element" "<foo>1</foo>" "element foo { 1 }";
    eq "computed element dynamic name" "<bar/>" "element { concat('b', 'ar') } {}";
    eq "computed attribute" "<e x=\"7\"/>" "<e>{ attribute x { 7 } }</e>";
    eq "computed text" "<e>hi</e>" "<e>{ text { 'hi' } }</e>";
    eq "computed comment" "<!--note-->" "comment { 'note' }";
    eq "computed pi" "<?tgt data?>" "processing-instruction tgt { 'data' }";
    eq "document node constructor" "<a/>" "document { <a/> }";
    eq "attribute nodes become attributes" "<e a=\"1\">text</e>"
      "<e>{ attribute a { 1 }, 'text' }</e>";
    t "attribute after content fails" (fun () ->
        expect_error "XQTY0024" "<e>{ 'text', attribute a { 1 } }</e>");
    eq "document children splice" "<w><a/><b/></w>"
      "<w>{ document { <a/>, <b/> } }</w>";
    eq "sequence of constructors" "<a/> <b/>" "(<a/>, <b/>)";
    eq "constructor inside flwor" "<li>1</li> <li>2</li>"
      "for $i in (1, 2) return <li>{$i}</li>";
    eq "direct nested with namespace decl" "ns-uri"
      "string(namespace-uri(<p:a xmlns:p='ns-uri'/>))";
    eq "comment in constructor" "<a><!--x--></a>" "<a><!--x--></a>";
    eq "entity in constructor text" "<a>&amp;</a>" "<a>&amp;</a>";
  ]

(* ---------- types ---------- *)

let type_tests =
  [
    eq "instance of integer" "true" "1 instance of xs:integer";
    eq "integer is decimal" "true" "1 instance of xs:decimal";
    eq "decimal is not integer" "false" "1.5 instance of xs:integer";
    eq "sequence occurrence star" "true" "(1, 2) instance of xs:integer*";
    eq "sequence occurrence plus empty false" "false" "() instance of xs:integer+";
    eq "optional accepts empty" "true" "() instance of xs:integer?";
    eq "one rejects two" "false" "(1, 2) instance of xs:integer";
    eq "element test" "true" "<a/> instance of element()";
    eq "named element test" "true" "<a/> instance of element(a)";
    eq "named element test mismatch" "false" "<a/> instance of element(b)";
    eq "text test" "true" "(<a>t</a>/text()) instance of text()";
    eq "document test" "true" "document { <a/> } instance of document-node()";
    eq "item type" "true" "(1, <a/>) instance of item()+";
    eq "empty-sequence type" "true" "() instance of empty-sequence()";
    eq "cast as" "42" "'42' cast as xs:integer";
    eq "cast as optional on empty" "" "() cast as xs:integer?";
    eq "castable negative" "false" "'x' castable as xs:integer";
    eq "treat as passes" "1" "(1) treat as xs:integer";
    t "treat as fails" (fun () -> expect_error "XPDY0050" "('a') treat as xs:integer");
    t "cast empty to non-optional fails" (fun () ->
        expect_error "XPTY0004" "() cast as xs:integer");
    eq "constructor function" "10" "xs:integer('10')";
    eq "constructor function date" "2008-06-09" "string(xs:date('2008-06-09'))";
  ]

(* ---------- functions & variables declarations ---------- *)

let declaration_tests =
  [
    eq "simple function" "25" "declare function local:sq($x) { $x * $x }; local:sq(5)";
    eq "recursion" "120"
      "declare function local:f($n) { if ($n le 1) then 1 else $n * local:f($n - 1) }; local:f(5)";
    eq "mutual recursion" "true"
      "declare function local:even($n) { if ($n = 0) then true() else local:odd($n - 1) }; \
       declare function local:odd($n) { if ($n = 0) then false() else local:even($n - 1) }; \
       local:even(10)";
    eq "typed params convert untyped" "3"
      "declare function local:add($a as xs:integer, $b as xs:integer) { $a + $b }; \
       local:add(xs:untypedAtomic('1'), 2)";
    eq "return type enforced" "5"
      "declare function local:f() as xs:integer { 5 }; local:f()";
    t "wrong return type fails" (fun () ->
        expect_error "XPTY0004" "declare function local:f() as xs:integer { 'x' }; local:f()");
    eq "global variable" "7" "declare variable $x := 7; $x";
    eq "global depends on global" "10"
      "declare variable $a := 4; declare variable $b := $a + 6; $b";
    eq "function sees globals" "8"
      "declare variable $g := 8; declare function local:get() { $g }; local:get()";
    eq "prolog namespace declaration" "u"
      "declare namespace p = 'u'; string(namespace-uri(<p:e/>))";
    eq "default element namespace" "d-ns"
      "declare default element namespace 'd-ns'; string(namespace-uri(<e/>))";
    t "unknown function" (fun () -> expect_error "XPST0017" "local:nope()");
    t "undefined variable" (fun () -> expect_error "XPST0008" "$nope");
    t "too deep recursion is caught" (fun () ->
        expect_error "XQDY0054"
          "declare function local:f($n) { local:f($n + 1) }; local:f(0)");
    eq "arity overloading" "1 2"
      "declare function local:f() { 1 }; declare function local:f($x) { 2 }; (local:f(), local:f(0))";
  ]

let edge_tests =
  [
    eq "namespace wildcard p:*" "2"
      "declare namespace p='u'; count(<r><p:a/><p:b/><c/></r>/p:*)";
    eq "local wildcard *:a" "2"
      "declare namespace p='u'; count(<r><p:a/><a/><b/></r>/*:a)";
    eq "ordered expression" "1 2" "ordered { (1, 2) }";
    eq "unordered expression" "2" "count(unordered { (1, 2) })";
    eq "pragma falls back to its content" "5" "(# ext:hint value #) { 2 + 3 }";
    eq "boundary-space strip default" "<a><b/></a>" "<a> <b/> </a>";
    eq "boundary-space preserve" "<a> <b/> </a>"
      "declare boundary-space preserve; <a> <b/> </a>";
    eq "default function namespace" "2"
      "declare default function namespace 'http://www.w3.org/2005/xpath-functions'; count((1,2))";
    eq "numeric predicate on parenthesized sequence" "b" "name((<a/>, <b/>, <c/>)[2])";
    eq "predicate chain on filter" "20" "(10, 20, 30)[. > 15][1]";
    eq "nested predicates" "1"
      "count(<r><a><b v='1'/></a><a><b v='2'/></a></r>/a[b[@v='2']])";
    eq "predicate on attribute step" "1"
      "let $d := <r><x k='a'/><x k='b'/></r> return count($d/x/@k[. = 'b'])";
    eq "arithmetic on attribute values" "3"
      "let $d := <r a='1' b='2'/> return $d/@a + $d/@b";
    eq "string functions compose" "HELLO-WORLD"
      "upper-case(concat(substring('hello!', 1, 5), '-', 'world'))";
    eq "comparison of dates from strings" "true"
      "xs:date('2008-01-01') < xs:date('2008-06-09')";
    eq "chained path over constructed tree" "v"
      "string(<a><b><c>v</c></b></a>/b/c)";
    eq "context item in nested function-less predicate" "2 3"
      "(1, 2, 3)[. ge 2]";
    eq "union mixed then count" "3"
      "let $d := <r><a/><b/><c/></r> return count($d/a | $d/b | $d/c)";
    eq "except keeps order" "a c"
      "let $d := <r><a/><b/><c/></r> return string-join(for $n in ($d/* except $d/b) return name($n), ' ')";
    eq "intersect" "b"
      "let $d := <r><a/><b/></r> return name(($d/* intersect $d/b))";
    eq "quantified over attributes" "true"
      "let $d := <r><x v='1'/><x v='2'/></r> return some $a in $d/x/@v satisfies $a = '2'";
    eq "deep flwor with let in loop" "1 4 9"
      "for $i in 1 to 3 let $sq := $i * $i return $sq";
    eq "string of empty sequence" "" "string(())";
    eq "text node identity inside element" "true"
      "let $e := <a>t</a> return ($e/text())[1] is ($e/node())[1]";
    eq "empty attribute value" "<a x=\"\"/>" "<a x=\"\"/>";
    eq "self-closing with space" "<br/>" "<br />";
  ]

let suite =
  lexer_tests @ arithmetic_tests @ comparison_tests @ flwor_tests
  @ quantified_typeswitch_tests @ path_tests @ constructor_tests @ type_tests
  @ declaration_tests @ edge_tests
