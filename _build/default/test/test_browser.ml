(* The browser runtime: pages, browser: functions, the window tree and
   its security, event syntax, behind-async, styles (paper §4 & §5). *)

open Xquery
module I = Xdm_item
module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let load_page ?(browser = B.create ()) html =
  Xqib.Page.load browser html;
  browser

let run b src = Xqib.Page.run_xquery b b.B.top_window src
let run_str b src = I.to_display_string (run b src)

let page_tests =
  [
    t "hello world (paper §4.1)" (fun () ->
        let b =
          load_page
            {|<html><head><title>Hello World Page</title>
              <script type="text/xquery">browser:alert("Hello, World!")</script>
              </head><body/></html>|}
        in
        check (Alcotest.list Alcotest.string) "alert" [ "Hello, World!" ] (B.alerts b));
    t "script registers listener, click fires it" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare updating function local:l($evt, $obj) {
                insert node <hit/> into //div[@id="log"]
              };
              on event "onclick" at //button attach listener local:l
              </script></head>
              <body><button id="b">go</button><div id="log"/></body></html>|}
        in
        let doc = B.document b in
        B.click b (Option.get (Dom.get_element_by_id doc "b"));
        B.click b (Option.get (Dom.get_element_by_id doc "b"));
        check Alcotest.int "two hits" 2
          (List.length (Dom.get_elements_by_local_name doc "hit")));
    t "detach listener stops events (§4.3.1)" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare updating function local:l($evt, $obj) {
                insert node <hit/> into //body
              };
              on event "onclick" at //button attach listener local:l
              </script></head><body><button id="b"/></body></html>|}
        in
        let doc = B.document b in
        let btn = Option.get (Dom.get_element_by_id doc "b") in
        B.click b btn;
        ignore (run b {|on event "onclick" at //button detach listener local:l|});
        B.click b btn;
        check Alcotest.int "one hit" 1
          (List.length (Dom.get_elements_by_local_name doc "hit")));
    t "trigger event simulates a click (§4.3.1)" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare updating function local:l($evt, $obj) {
                insert node <hit/> into //body
              };
              on event "onclick" at //input[@id="myButton"] attach listener local:l
              </script></head><body><input id="myButton"/></body></html>|}
        in
        ignore (run b {|trigger event "onclick" at //input[@id="myButton"]|});
        check Alcotest.int "hit" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "hit")));
    t "event node carries type and detail (§4.3.2)" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare updating function local:l($evt, $obj) {
                insert node <seen type="{$evt/type}" button="{$evt/button}"/> into //body
              };
              on event "onclick" at //button attach listener local:l
              </script></head><body><button/></body></html>|}
        in
        let doc = B.document b in
        B.click b (List.hd (Dom.get_elements_by_local_name doc "button"));
        let seen = List.hd (Dom.get_elements_by_local_name doc "seen") in
        check (Alcotest.option Alcotest.string) "type" (Some "onclick")
          (Dom.attribute_local seen "type");
        check (Alcotest.option Alcotest.string) "button" (Some "0")
          (Dom.attribute_local seen "button"));
    t "$obj is the event target (left/right dispatch)" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare updating function local:l($evt, $obj) {
                if ($evt/button = 1)
                then insert node attribute left {'y'} into $obj
                else insert node attribute other {'y'} into $obj
              };
              on event "onclick" at //button attach listener local:l
              </script></head><body><button id="b"/></body></html>|}
        in
        let doc = B.document b in
        let btn = Option.get (Dom.get_element_by_id doc "b") in
        B.dispatch b ~detail:[ ("button", "1") ] ~target:btn "onclick";
        check (Alcotest.option Alcotest.string) "left" (Some "y")
          (Dom.attribute_local btn "left"));
    t "xqueryp local:main() runs at load (§5.1)" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xqueryp">
              declare sequential function local:main() {
                insert node <ran/> into //body
              };
              </script></head><body/></html>|}
        in
        check Alcotest.int "ran" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "ran")));
    t "multiple xquery scripts share the page context" (fun () ->
        let b =
          load_page
            {|<html><head>
              <script type="text/xquery">declare variable $greeting := 'hi';</script>
              <script type="text/xquery">browser:alert($greeting)</script>
              </head><body/></html>|}
        in
        check (Alcotest.list Alcotest.string) "shared" [ "hi" ] (B.alerts b));
    t "render counter tracks DOM mutations" (fun () ->
        let b = load_page {|<html><body><div id="d"/></body></html>|} in
        let before = b.B.render_count in
        ignore (run b {|insert node <p/> into //div[@id='d']|});
        check Alcotest.bool "dirtied" true (b.B.render_count > before));
    t "IE uppercase quirk (§5.1)" (fun () ->
        let b = B.create ~uppercase_tags:true () in
        Xqib.Page.load b {|<html><body><div id="x"/></body></html>|};
        check Alcotest.string "uppercase count" "1" (run_str b "count(//DIV)");
        check Alcotest.string "lowercase misses" "0" (run_str b "count(//div)"));
  ]

let browser_function_tests =
  [
    t "browser:screen and navigator (§4.2.2)" (fun () ->
        let b = load_page "<html><body/></html>" in
        check Alcotest.string "height" "1024" (run_str b "string(browser:screen()/height)");
        check Alcotest.string "appName" "Microsoft Internet Explorer"
          (run_str b "string(browser:navigator()/appName)"));
    t "browser-specific code via navigator (paper example)" (fun () ->
        let b =
          B.create ~navigator:Xqib.Bom.firefox ()
        in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            if (browser:navigator()/appName ftcontains "Mozilla")
            then browser:alert("You are running Mozilla")
            else browser:alert("You are running IE")
            </script></head><body/></html>|};
        check (Alcotest.list Alcotest.string) "mozilla" [ "You are running Mozilla" ]
          (B.alerts b));
    t "browser:self()/status update writes back (§4.2.1)" (fun () ->
        let b = load_page "<html><body/></html>" in
        ignore (run b {|replace value of node browser:self()/status with "Welcome"|});
        check Alcotest.string "status" "Welcome" b.B.top_window.Xqib.Windows.status);
    t "window lastModified is exposed" (fun () ->
        let b = load_page "<html><body/></html>" in
        check Alcotest.bool "non-empty" true
          (String.length (run_str b "string(browser:self()/lastModified)") > 0));
    t "browser:document of self window" (fun () ->
        let b = load_page {|<html><body><div id="k"/></body></html>|} in
        check Alcotest.string "same doc" "1"
          (run_str b "count(browser:document(browser:self())//div[@id='k'])"));
    t "frames appear under frames/window (§4.2.1)" (fun () ->
        let b = load_page "<html><body/></html>" in
        let frame = Xqib.Windows.create ~name:"leftframe" ~href:"http://localhost/f" () in
        Xqib.Windows.add_frame ~parent:b.B.top_window frame;
        check Alcotest.string "found" "leftframe"
          (run_str b {|string(browser:top()//window[@name="leftframe"]/@name)|}));
    t "location element children (§4.2.1)" (fun () ->
        let b = B.create ~href:"http://www.dbis.ethz.ch/page" () in
        Xqib.Page.load b "<html><body/></html>";
        check Alcotest.string "href" "http://www.dbis.ethz.ch/page"
          (run_str b "string(browser:self()/location/href)");
        check Alcotest.string "host" "www.dbis.ethz.ch"
          (run_str b "string(browser:self()/location/host)"));
    t "windowOpen adds a frame" (fun () ->
        let b = load_page "<html><body/></html>" in
        ignore (run b {|browser:windowOpen("http://localhost/two")|});
        check Alcotest.int "frame count" 1 (List.length b.B.top_window.Xqib.Windows.frames));
    t "windowClose removes it" (fun () ->
        let b = load_page "<html><body/></html>" in
        ignore
          (run b
             {|{ declare variable $w := browser:windowOpen("http://localhost/two");
                 browser:windowClose($w) }|});
        check Alcotest.int "closed" 0 (List.length b.B.top_window.Xqib.Windows.frames));
    t "history functions" (fun () ->
        let b = load_page "<html><body/></html>" in
        Xqib.Windows.navigate b.B.top_window "http://localhost/a";
        Xqib.Windows.navigate b.B.top_window "http://localhost/b";
        Xqib.Windows.history_back b.B.top_window;
        check Alcotest.string "back" "http://localhost/a" b.B.top_window.Xqib.Windows.href;
        Xqib.Windows.history_forward b.B.top_window;
        check Alcotest.string "fwd" "http://localhost/b" b.B.top_window.Xqib.Windows.href;
        Xqib.Windows.history_go b.B.top_window (-2);
        check Alcotest.string "go-2" "http://localhost/" b.B.top_window.Xqib.Windows.href);
    t "browser:write appends text" (fun () ->
        let b = load_page "<html><body/></html>" in
        ignore (run b {|browser:write("written")|});
        check Alcotest.bool "present" true
          (String.length (Dom.string_value (B.document b)) >= 7));
    t "prompt and confirm use configured responses" (fun () ->
        let b = load_page "<html><body/></html>" in
        b.B.prompt_response <- "typed";
        b.B.confirm_response <- false;
        check Alcotest.string "prompt" "typed" (run_str b "browser:prompt('q')");
        check Alcotest.string "confirm" "false" (run_str b "browser:confirm('q')"));
  ]

let security_tests =
  [
    t "cross-origin windows are invisible (§4.2.1)" (fun () ->
        let b = B.create ~href:"http://a.example/" () in
        Xqib.Page.load b "<html><body/></html>";
        let foreign = Xqib.Windows.create ~name:"evil" ~href:"http://other.example/" () in
        Xqib.Windows.add_frame ~parent:b.B.top_window foreign;
        check Alcotest.string "invisible" "0"
          (run_str b {|count(browser:top()//window[@name="evil"])|}));
    t "same-origin frames are visible" (fun () ->
        let b = B.create ~href:"http://a.example/" () in
        Xqib.Page.load b "<html><body/></html>";
        let f = Xqib.Windows.create ~name:"kid" ~href:"http://a.example/sub" () in
        Xqib.Windows.add_frame ~parent:b.B.top_window f;
        check Alcotest.string "visible" "1"
          (run_str b {|count(browser:top()//window[@name="kid"])|}));
    t "cross-origin document() is empty" (fun () ->
        let b = B.create ~href:"http://a.example/" () in
        Xqib.Page.load b "<html><body/></html>";
        let f = Xqib.Windows.create ~name:"kid" ~href:"http://other.example/" () in
        Xqib.Windows.add_frame ~parent:b.B.top_window f;
        (* the shell window node exists in the tree but has no children
           and no registry entry: document() yields empty *)
        check Alcotest.string "empty" "0"
          (run_str b
             {|count(for $w in browser:top()/frames/window return browser:document($w))|}));
    t "fn:doc blocked in the browser (§4.2.1)" (fun () ->
        let b = load_page "<html><body/></html>" in
        match run b "doc('x.xml')" with
        | exception Xq_error.Error e ->
            check Alcotest.string "code" Xq_error.security e.Xq_error.code
        | _ -> Alcotest.fail "expected security error");
    t "fn:put blocked in the browser" (fun () ->
        let b = load_page "<html><body/></html>" in
        match run b "put(<a/>, 'x.xml')" with
        | exception Xq_error.Error e ->
            check Alcotest.string "code" Xq_error.security e.Xq_error.code
        | _ -> Alcotest.fail "expected security error");
    t "Allow_all policy sees everything" (fun () ->
        let b = B.create ~policy:Xqib.Origin.Allow_all ~href:"http://a.example/" () in
        Xqib.Page.load b "<html><body/></html>";
        let f = Xqib.Windows.create ~name:"kid" ~href:"http://other.example/" () in
        Xqib.Windows.add_frame ~parent:b.B.top_window f;
        check Alcotest.string "visible" "1"
          (run_str b {|count(browser:top()//window[@name="kid"])|}));
    t "origin parsing" (fun () ->
        check Alcotest.bool "same" true
          (Xqib.Origin.same_origin (Xqib.Origin.of_uri "http://h/x") (Xqib.Origin.of_uri "http://h/y"));
        check Alcotest.bool "scheme differs" false
          (Xqib.Origin.same_origin (Xqib.Origin.of_uri "http://h/") (Xqib.Origin.of_uri "https://h/"));
        check Alcotest.bool "opaque never matches" false
          (Xqib.Origin.same_origin Xqib.Origin.opaque Xqib.Origin.opaque));
  ]

let style_tests =
  [
    t "set style adds a property (§4.5)" (fun () ->
        let b = load_page {|<html><body><table id="thistable"/></body></html>|} in
        ignore
          (run b {|set style "border-margin" of //table[@id="thistable"] to "2px"|});
        let table = Option.get (Dom.get_element_by_id (B.document b) "thistable") in
        check (Alcotest.option Alcotest.string) "style" (Some "border-margin: 2px")
          (Dom.attribute_local table "style"));
    t "get style reads it back (§4.5)" (fun () ->
        let b = load_page {|<html><body><table id="t" style="color: red"/></body></html>|} in
        check Alcotest.string "read" "red" (run_str b {|get style "color" of //table[@id="t"]|}));
    t "set style updates existing property" (fun () ->
        let b = load_page {|<html><body><div id="d" style="color: red; margin: 1px"/></body></html>|} in
        ignore (run b {|set style "color" of //div[@id="d"] to "blue"|});
        check Alcotest.string "updated" "blue" (run_str b {|get style "color" of //div[@id="d"]|});
        check Alcotest.string "other preserved" "1px" (run_str b {|get style "margin" of //div[@id="d"]|}));
    t "get style of absent property is empty" (fun () ->
        let b = load_page {|<html><body><div id="d"/></body></html>|} in
        check Alcotest.string "empty" "0" (run_str b {|count(get style "x" of //div[@id="d"])|}));
    t "scripting get style into variable (paper example)" (fun () ->
        let b = load_page {|<html><body><table id="thistable" style="border-margin: 2px"/></body></html>|} in
        check Alcotest.string "2px"
          "2px"
          (run_str b
             {|{ declare variable $mystring as xs:string;
                 set $mystring := get style "border-margin" of //table[@id="thistable"];
                 $mystring }|}));
  ]

let async_tests =
  [
    t "behind runs asynchronously and signals readyState 4 (§4.4)" (fun () ->
        let b = B.create () in
        Http_sim.register_doc b.B.http ~uri:"http://svc/hint.xml" "<hint>alice</hint>";
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:onResult($readyState, $result) {
              if ($readyState = 4)
              then replace value of node //*[@id="txtHint"] with string($result)
              else ()
            };
            declare updating function local:showHint($str) {
              on event "stateChanged" behind rest:get("http://svc/hint.xml")
              attach listener local:onResult
            };
            on event "onkeyup" at //input attach listener local:showHint
            </script></head>
            <body><input id="text1"/><span id="txtHint"/></body></html>|};
        let doc = B.document b in
        let input = Option.get (Dom.get_element_by_id doc "text1") in
        B.type_text b input "a";
        (* not yet: the call is queued, not executed *)
        let hint () = Dom.string_value (Option.get (Dom.get_element_by_id doc "txtHint")) in
        check Alcotest.string "still empty" "" (hint ());
        B.run b;
        check Alcotest.string "hint arrived" "alice" (hint ()));
    t "behind does not block the UI (ui_blocked stays flat)" (fun () ->
        let b = B.create () in
        Http_sim.register_doc b.B.http ~uri:"http://svc/slow.xml" "<x/>";
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare function local:onResult($readyState, $result) { () };
            declare updating function local:go($evt, $obj) {
              on event "stateChanged" behind rest:get("http://svc/slow.xml")
              attach listener local:onResult
            };
            on event "onclick" at //button attach listener local:go
            </script></head><body><button id="b"/></body></html>|};
        let btn = Option.get (Dom.get_element_by_id (B.document b) "b") in
        B.click b btn;
        check (Alcotest.float 0.001) "not blocked" 0. b.B.ui_blocked;
        B.run b;
        check Alcotest.bool "work happened later" true (Virtual_clock.now b.B.clock > 0.));
    t "synchronous rest call blocks the UI" (fun () ->
        let b = B.create () in
        Http_sim.register_doc b.B.http ~uri:"http://svc/slow.xml" "<x/>";
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:go($evt, $obj) {
              replace value of node //span with string(rest:get("http://svc/slow.xml")/x)
            };
            on event "onclick" at //button attach listener local:go
            </script></head><body><button id="b"/><span/></body></html>|};
        let btn = Option.get (Dom.get_element_by_id (B.document b) "b") in
        B.click b btn;
        check Alcotest.bool "blocked" true (b.B.ui_blocked > 0.));
    t "readyState 1 signal precedes completion" (fun () ->
        let b = B.create () in
        Http_sim.register_doc b.B.http ~uri:"http://svc/x.xml" "<x/>";
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:onResult($readyState, $result) {
              insert node <state n="{$readyState}"/> into //body
            };
            { on event "stateChanged" behind rest:get("http://svc/x.xml")
              attach listener local:onResult }
            </script></head><body/></html>|};
        B.run b;
        let states =
          List.filter_map
            (fun n -> Dom.attribute_local n "n")
            (Dom.get_elements_by_local_name (B.document b) "state")
        in
        check (Alcotest.list Alcotest.string) "signals" [ "1"; "4" ] states);
  ]

let error_isolation_tests =
  [
    t "a failing listener does not abort dispatch" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare function local:bad($evt, $obj) { error(QName('u','BOOM'), 'handler died') };
              declare updating function local:good($evt, $obj) {
                insert node <ok/> into //body
              };
              ( on event "onclick" at //button attach listener local:bad,
                on event "onclick" at //button attach listener local:good )
              </script></head><body><button id="b"/></body></html>|}
        in
        let doc = B.document b in
        B.click b (Option.get (Dom.get_element_by_id doc "b"));
        (* the good listener still ran *)
        check Alcotest.int "good ran" 1
          (List.length (Dom.get_elements_by_local_name doc "ok"));
        (* and the error is recorded in the console *)
        check Alcotest.bool "error recorded" true
          (List.exists
             (fun m ->
               let flat = String.map (function '\n' -> ' ' | c -> c) m in
               Str.string_match (Str.regexp ".*BOOM.*") flat 0)
             b.B.script_errors));
    t "failing listener discards its partial updates" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare sequential function local:bad($evt, $obj) {
                insert node <partial/> into //body;
                error(QName('u','MID'), 'died midway');
              };
              on event "onclick" at //button attach listener local:bad
              </script></head><body><button id="b"/></body></html>|}
        in
        let doc = B.document b in
        B.click b (Option.get (Dom.get_element_by_id doc "b"));
        (* sequential semantics applied the first statement before the
           error; the pending (unapplied) list after the error is
           dropped, and dispatch survives *)
        check Alcotest.bool "dispatch survived" true (b.B.script_errors <> []));
  ]

let timer_tests =
  [
    t "browser:setTimeout defers a named function" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare updating function local:tick() {
                insert node <tick/> into //body
              };
              browser:setTimeout("local:tick", 250)
              </script></head><body/></html>|}
        in
        check Alcotest.int "not yet" 0
          (List.length (Dom.get_elements_by_local_name (B.document b) "tick"));
        B.run b;
        check Alcotest.int "fired" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "tick"));
        check (Alcotest.float 0.001) "after 0.25s" 0.25 (Virtual_clock.now b.B.clock));
    t "timers chain on the event loop" (fun () ->
        let b =
          load_page
            {|<html><head><script type="text/xquery">
              declare variable $n := 3;
              declare updating function local:tick() {
                insert node <tick/> into //body,
                (if (count(//tick) lt 2)
                 then browser:setTimeout("local:tick", 100)
                 else ())
              };
              browser:setTimeout("local:tick", 100)
              </script></head><body/></html>|}
        in
        B.run b;
        (* snapshot semantics: the count is read before the same run's
           insert applies, so the chain runs for counts 0 and 1 and the
           final run still inserts — three ticks in total *)
        check Alcotest.int "chained" 3
          (List.length (Dom.get_elements_by_local_name (B.document b) "tick")));
  ]

let page_robustness_tests =
  [
    t "a script with a syntax error does not abort the page load" (fun () ->
        let b =
          load_page
            {|<html><head>
              <script type="text/xquery">this is (not valid XQuery</script>
              <script type="text/xquery">browser:alert("still ran")</script>
              </head><body><p>content</p></body></html>|}
        in
        check (Alcotest.list Alcotest.string) "later script ran" [ "still ran" ]
          (B.alerts b);
        check Alcotest.bool "error recorded" true (b.B.script_errors <> []);
        check Alcotest.int "page parsed" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "p")));
    t "a JS script error does not abort the page load" (fun () ->
        let b =
          load_page
            {|<html><head>
              <script type="text/javascript">nosuchfunction();</script>
              <script type="text/xquery">browser:alert("xq ran")</script>
              </head><body/></html>|}
        in
        check (Alcotest.list Alcotest.string) "xq ran" [ "xq ran" ] (B.alerts b);
        check Alcotest.bool "js error recorded" true (b.B.script_errors <> []));
    t "a runtime error in a script is recorded" (fun () ->
        let b =
          load_page
            {|<html><head>
              <script type="text/xquery">1 div 0</script>
              </head><body/></html>|}
        in
        check Alcotest.bool "recorded" true
          (List.exists
             (fun m -> String.length m > 0)
             b.B.script_errors));
  ]

let suite =
  page_tests @ browser_function_tests @ security_tests @ style_tests
  @ async_tests @ error_isolation_tests @ timer_tests @ page_robustness_tests
