(* The fn: built-in function library. *)

open Xquery
module I = Xdm_item

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let run_str src = I.to_display_string (Engine.eval_string src)
let eq name expected src = t name (fun () -> check Alcotest.string src expected (run_str src))

let expect_error code src =
  match Engine.eval_string src with
  | exception Xq_error.Error e -> check Alcotest.string src code e.Xq_error.code
  | r -> Alcotest.failf "%s: expected %s, got %s" src code (I.to_display_string r)

let string_tests =
  [
    eq "concat" "abc" "concat('a', 'b', 'c')";
    eq "concat coerces" "x1" "concat('x', 1)";
    eq "concat variadic" "abcd" "concat('a','b','c','d')";
    eq "string-join" "a-b" "string-join(('a','b'), '-')";
    eq "string-join empty" "" "string-join((), ',')";
    eq "substring from" "world" "substring('Hello world', 7)";
    eq "substring with length" "ell" "substring('Hello', 2, 3)";
    eq "substring fractional start rounds" "234" "substring('12345', 1.5, 2.6)";
    eq "substring beyond end" "" "substring('ab', 5)";
    eq "string-length" "5" "string-length('Hello')";
    eq "string-length of empty seq" "0" "string-length(())";
    eq "string-length counts code points" "3" "string-length('a&#x20AC;b')";
    eq "normalize-space" "a b c" "normalize-space('  a   b&#x9;c  ')";
    eq "upper-case" "ABC" "upper-case('aBc')";
    eq "lower-case" "abc" "lower-case('AbC')";
    eq "translate" "ABr" "translate('bar','ab','BA')";
    eq "translate removal" "AAA" "translate('A-A-A', '-', '')";
    eq "contains" "true" "contains('XQuery in the browser', 'browser')";
    eq "contains empty needle" "true" "contains('x', '')";
    eq "contains false" "false" "contains('abc', 'z')";
    eq "starts-with" "true" "starts-with('hello', 'he')";
    eq "ends-with" "true" "ends-with('hello', 'lo')";
    eq "substring-before" "he" "substring-before('hello', 'llo')";
    eq "substring-before absent" "" "substring-before('hello', 'z')";
    eq "substring-after" "llo" "substring-after('hello', 'he')";
    eq "compare" "-1" "compare('a', 'b')";
    eq "matches" "true" "matches('abc123', '[0-9]+')";
    eq "matches anchored" "false" "matches('abc', '^x')";
    eq "matches case-insensitive flag" "true" "matches('ABC', 'abc', 'i')";
    eq "replace" "a-c" "replace('abc', 'b', '-')";
    eq "replace with group" "[ab]" "replace('ab', '(a)(b)', '[$1$2]')";
    eq "tokenize" "a b c" "string-join(tokenize('a,b,c', ','), ' ')";
    eq "tokenize on whitespace class" "3" "count(tokenize('1 2  3', '\\s+'))";
    eq "codepoints-to-string" "AB" "codepoints-to-string((65, 66))";
    eq "string-to-codepoints" "65 66" "string-join(for $c in string-to-codepoints('AB') return string($c), ' ')";
    eq "encode-for-uri" "a%20b%2Fc" "encode-for-uri('a b/c')";
  ]

let numeric_tests =
  [
    eq "abs" "3" "abs(-3)";
    eq "abs decimal" "1.5" "abs(-1.5)";
    eq "ceiling" "2" "ceiling(1.1)";
    eq "floor" "1" "floor(1.9)";
    eq "round half up" "2" "round(1.5)";
    eq "round negative half" "-1" "round(-1.5)";
    eq "round-half-to-even" "2" "round-half-to-even(1.5)";
    eq "round-half-to-even down" "2" "round-half-to-even(2.5)";
    eq "round-half-to-even precision" "1.57" "string(round-half-to-even(1.5678, 2))";
    eq "number of string" "42" "number('42')";
    eq "number NaN" "NaN" "string(number('x'))";
    eq "numeric empty args propagate" "" "abs(())";
  ]

let boolean_tests =
  [
    eq "true/false" "true false" "(true(), false())";
    eq "not" "false" "not(1 = 1)";
    eq "not of empty" "true" "not(())";
    eq "boolean of string" "true" "boolean('x')";
    eq "boolean of zero" "false" "boolean(0)";
  ]

let sequence_tests =
  [
    eq "empty/exists" "true false false true"
      "(empty(()), empty((1)), exists(()), exists((1)))";
    eq "count" "3" "count((1, 2, 3))";
    eq "count empty" "0" "count(())";
    eq "head tail" "1 2 3" "(head((1,2,3)), tail((1,2,3)))";
    eq "reverse" "3 2 1" "reverse((1, 2, 3))";
    eq "insert-before middle" "1 9 2" "insert-before((1, 2), 2, 9)";
    eq "insert-before clamps" "9 1" "insert-before((1), 0, 9)";
    eq "insert-before past end appends" "1 9" "insert-before((1), 5, 9)";
    eq "remove" "1 3" "remove((1, 2, 3), 2)";
    eq "remove out of range" "1 2" "remove((1, 2), 7)";
    eq "subsequence" "2 3" "subsequence((1,2,3,4), 2, 2)";
    eq "subsequence to end" "3 4" "subsequence((1,2,3,4), 3)";
    eq "distinct-values" "1 2 3" "distinct-values((1, 2, 1, 3, 2))";
    eq "distinct-values mixed numeric" "1" "string(count(distinct-values((1, 1.0))))";
    eq "index-of" "2 4" "index-of((10, 20, 30, 20), 20)";
    eq "index-of absent" "" "index-of((1, 2), 9)";
    eq "deep-equal atoms" "true" "deep-equal((1, 'a'), (1, 'a'))";
    eq "deep-equal nodes" "true" "deep-equal(<a x='1'><b/></a>, <a x='1'><b/></a>)";
    eq "deep-equal attr order irrelevant" "true"
      "deep-equal(<a x='1' y='2'/>, <a y='2' x='1'/>)";
    eq "deep-equal differs" "false" "deep-equal(<a/>, <b/>)";
    eq "zero-or-one ok" "1" "zero-or-one((1))";
    eq "exactly-one ok" "1" "exactly-one((1))";
    t "zero-or-one fails" (fun () -> expect_error "FORG0003" "zero-or-one((1,2))");
    t "one-or-more fails" (fun () -> expect_error "FORG0004" "one-or-more(())");
    t "exactly-one fails" (fun () -> expect_error "FORG0005" "exactly-one(())");
    eq "unordered passthrough" "3" "count(unordered((1,2,3)))";
  ]

let aggregate_tests =
  [
    eq "sum" "6" "sum((1, 2, 3))";
    eq "sum empty is zero" "0" "sum(())";
    eq "sum with zero value" "0" "sum((), 0)";
    eq "sum over untyped" "3" "sum((<a>1</a>, <a>2</a>))";
    eq "avg" "2" "avg((1, 2, 3))";
    eq "avg empty" "" "avg(())";
    eq "avg decimal result" "1.5" "avg((1, 2))";
    eq "max" "3" "max((1, 3, 2))";
    eq "min" "1" "min((3, 1, 2))";
    eq "max strings" "c" "max(('a', 'c', 'b'))";
    eq "max untyped numeric" "10" "max((<a>9</a>, <a>10</a>))";
    eq "count of flwor" "2" "count(for $x in (1,2) return <a/>)";
  ]

let node_tests =
  [
    eq "name" "book" "name(<book/>)";
    eq "name of attribute" "id" "let $e := <a id='1'/> return name($e/@id)";
    eq "local-name with prefix" "x" "declare namespace p='u'; local-name(<p:x/>)";
    eq "namespace-uri" "u" "declare namespace p='u'; namespace-uri(<p:x/>)";
    eq "namespace-uri empty for plain" "" "namespace-uri(<x/>)";
    eq "node-name returns qname" "a" "string(node-name(<a/>))";
    eq "root" "r" "let $d := <r><a><b/></a></r> return name(root($d//b))";
    eq "position in predicate" "b" "name((<a/>, <b/>)[position() = 2])";
    eq "last" "c" "name((<a/>, <b/>, <c/>)[last()])";
    eq "fn:id finds element" "target"
      "let $d := <r><x id='k'>target</x></r> return string(id('k', $d))";
    eq "data" "1 2" "data((<a>1</a>, <a>2</a>))";
    eq "string of node" "txt" "string(<a>txt</a>)";
    eq "string contextless arg" "5" "string(5)";
    eq "trace passes value" "7" "trace(7, 'dbg')";
  ]

let qname_datetime_tests =
  [
    eq "QName" "true" "QName('urn:x', 'p:loc') = QName('urn:x', 'q:loc')";
    eq "local-name-from-QName" "loc" "local-name-from-QName(QName('u', 'p:loc'))";
    eq "namespace-uri-from-QName" "u" "namespace-uri-from-QName(QName('u', 'loc'))";
    eq "current-date deterministic" "2008-06-09Z" "string(current-date())";
    eq "current-dateTime deterministic" "2008-06-09T12:00:00Z" "string(current-dateTime())";
    eq "year-from-date" "2008" "year-from-date(xs:date('2008-06-09'))";
    eq "month-from-date" "6" "month-from-date(xs:date('2008-06-09'))";
    eq "day-from-date" "9" "day-from-date(xs:date('2008-06-09'))";
    eq "hours-from-dateTime" "14" "hours-from-dateTime(xs:dateTime('2008-06-09T14:30:05'))";
    eq "minutes-from-time" "30" "minutes-from-time(xs:time('14:30:05'))";
    eq "seconds-from-dateTime" "5" "seconds-from-dateTime(xs:dateTime('2008-06-09T14:30:05'))";
    eq "years-from-duration" "1" "years-from-duration(xs:yearMonthDuration('P1Y6M'))";
    eq "months-from-duration" "6" "months-from-duration(xs:yearMonthDuration('P1Y6M'))";
    eq "days-from-duration" "2" "days-from-duration(xs:dayTimeDuration('P2DT5H'))";
    eq "hours-from-duration" "5" "hours-from-duration(xs:dayTimeDuration('P2DT5H'))";
    eq "date arithmetic in query" "2008-06-12"
      "string(xs:date('2008-06-09') + xs:dayTimeDuration('P3D'))";
    eq "dateTime comparison" "true"
      "xs:dateTime('2008-06-09T12:00:00Z') lt xs:dateTime('2008-06-09T13:00:00Z')";
  ]

let timezone_tests =
  [
    eq "fn:dateTime combines date and time" "2008-06-09T14:30:00"
      "string(dateTime(xs:date('2008-06-09'), xs:time('14:30:00')))";
    eq "fn:dateTime keeps the date's timezone" "2008-06-09T10:00:00Z"
      "string(dateTime(xs:date('2008-06-09Z'), xs:time('10:00:00')))";
    eq "fn:dateTime empty propagates" "0" "count(dateTime((), xs:time('10:00:00')))";
    eq "timezone-from-dateTime" "PT2H"
      "string(timezone-from-dateTime(xs:dateTime('2008-06-09T10:00:00+02:00')))";
    eq "timezone-from-date absent" "0"
      "count(timezone-from-date(xs:date('2008-06-09')))";
    eq "implicit-timezone is UTC" "PT0S" "string(implicit-timezone())";
    eq "adjust-dateTime-to-timezone shifts the clock" "2008-06-09T12:00:00+02:00"
      "string(adjust-dateTime-to-timezone(xs:dateTime('2008-06-09T10:00:00Z'), xs:dayTimeDuration('PT2H')))";
    eq "adjust to empty strips the timezone" "2008-06-09T10:00:00"
      "string(adjust-dateTime-to-timezone(xs:dateTime('2008-06-09T10:00:00Z'), ()))";
    eq "adjust naive dateTime attaches the timezone" "2008-06-09T10:00:00+01:00"
      "string(adjust-dateTime-to-timezone(xs:dateTime('2008-06-09T10:00:00'), xs:dayTimeDuration('PT1H')))";
    eq "adjust-time-to-timezone" "09:30:00-03:00"
      "string(adjust-time-to-timezone(xs:time('12:30:00Z'), xs:dayTimeDuration('-PT3H')))";
  ]

let uri_misc_tests =
  [
    eq "prefix-from-QName" "p" "prefix-from-QName(QName('u', 'p:x'))";
    eq "prefix-from-QName without prefix" "0" "count(prefix-from-QName(QName('u', 'x')))";
    eq "resolve-uri absolute passthrough" "http://a/b"
      "string(resolve-uri('http://a/b', 'http://base/x'))";
    eq "resolve-uri path-relative" "http://base/dir/doc.xml"
      "string(resolve-uri('doc.xml', 'http://base/dir/page.html'))";
    eq "resolve-uri authority-relative" "http://base/abs"
      "string(resolve-uri('/abs', 'http://base/dir/page.html'))";
    eq "fn:lang matches exactly" "true"
      "let $d := <p xml:lang='en'><q/></p> return lang('en', ($d//q)[1])";
    eq "fn:lang matches a sublanguage" "true"
      "let $d := <p xml:lang='en-US'/> return lang('en', $d)";
    eq "fn:lang rejects others" "false"
      "let $d := <p xml:lang='de'/> return lang('en', $d)";
    eq "nilled is false on elements" "false" "nilled(<a/>)";
    eq "nilled empty on non-elements" "0" "count(nilled(<a>t</a>/text()))";
  ]

let error_doc_tests =
  [
    t "fn:error default" (fun () -> expect_error "FOER0000" "error()");
    t "fn:error custom" (fun () ->
        expect_error "MYERR" "error(QName('u', 'MYERR'), 'boom')");
    t "doc unavailable by default" (fun () -> expect_error "FODC0002" "doc('x.xml')");
    eq "doc-available false" "false" "doc-available('x.xml')";
    t "unknown function reports arity" (fun () ->
        expect_error "XPST0017" "string-join('a','b','c')");
  ]

let suite =
  string_tests @ numeric_tests @ boolean_tests @ sequence_tests
  @ aggregate_tests @ node_tests @ qname_datetime_tests @ timezone_tests
  @ uri_misc_tests @ error_doc_tests
