(* XDM: durations, dates, atomic values, casting, arithmetic, items. *)

module A = Xdm_atomic
module I = Xdm_item

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let duration_tests =
  [
    t "parse full duration" (fun () ->
        let d = Xdm_duration.of_string "P1Y2M3DT4H5M6S" in
        check Alcotest.int "months" 14 d.Xdm_duration.months;
        check (Alcotest.float 0.001) "seconds"
          ((3. *. 86400.) +. (4. *. 3600.) +. (5. *. 60.) +. 6.)
          d.Xdm_duration.seconds);
    t "negative duration" (fun () ->
        let d = Xdm_duration.of_string "-PT90S" in
        check (Alcotest.float 0.001) "sec" (-90.) d.Xdm_duration.seconds);
    t "canonical form" (fun () ->
        check Alcotest.string "P3D" "P3D" (Xdm_duration.to_string (Xdm_duration.of_string "PT72H"));
        check Alcotest.string "PT0S" "PT0S" (Xdm_duration.to_string Xdm_duration.zero);
        check Alcotest.string "P1Y2M" "P1Y2M" (Xdm_duration.to_string (Xdm_duration.of_string "P14M")));
    t "round trip through string" (fun () ->
        let d = Xdm_duration.of_string "P2DT3H4M5S" in
        check Alcotest.bool "eq" true
          (Xdm_duration.equal d (Xdm_duration.of_string (Xdm_duration.to_string d))));
    t "add and negate" (fun () ->
        let a = Xdm_duration.of_string "P1D" and b = Xdm_duration.of_string "PT12H" in
        let s = Xdm_duration.add a b in
        check (Alcotest.float 0.001) "1.5 days" (1.5 *. 86400.) s.Xdm_duration.seconds;
        check (Alcotest.float 0.001) "neg" (-.s.Xdm_duration.seconds)
          (Xdm_duration.negate s).Xdm_duration.seconds);
    t "scale" (fun () ->
        let d = Xdm_duration.scale (Xdm_duration.of_string "PT10S") 2.5 in
        check (Alcotest.float 0.001) "25s" 25. d.Xdm_duration.seconds);
    t "malformed fails" (fun () ->
        List.iter
          (fun s ->
            match Xdm_duration.of_string s with
            | exception Failure _ -> ()
            | _ -> Alcotest.failf "%S should fail" s)
          [ ""; "P"; "1Y"; "PT"; "P1H" ]);
  ]

let datetime_tests =
  [
    t "parse date" (fun () ->
        let d = Xdm_datetime.date_of_string "2008-06-09" in
        check Alcotest.int "y" 2008 d.Xdm_datetime.year;
        check Alcotest.int "m" 6 d.Xdm_datetime.month;
        check Alcotest.int "d" 9 d.Xdm_datetime.day);
    t "parse dateTime with timezone" (fun () ->
        let d = Xdm_datetime.date_time_of_string "2008-06-09T14:30:00+02:00" in
        check (Alcotest.option Alcotest.int) "tz" (Some 120) d.Xdm_datetime.tz_minutes);
    t "parse time with fraction" (fun () ->
        let d = Xdm_datetime.time_of_string "01:02:03.5Z" in
        check (Alcotest.float 0.0001) "sec" 3.5 d.Xdm_datetime.second);
    t "print round trip" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.string s s
              (Xdm_datetime.date_time_to_string (Xdm_datetime.date_time_of_string s)))
          [ "2008-06-09T14:30:00"; "1999-12-31T23:59:59Z"; "2020-02-29T00:00:00-05:00" ]);
    t "epoch round trip" (fun () ->
        let d = Xdm_datetime.date_time_of_string "2008-06-09T12:00:00Z" in
        let d2 = Xdm_datetime.of_epoch_seconds ~tz_minutes:0 (Xdm_datetime.to_epoch_seconds d) in
        check Alcotest.bool "equal" true (Xdm_datetime.equal d d2));
    t "timezone affects instant" (fun () ->
        let utc = Xdm_datetime.date_time_of_string "2008-06-09T12:00:00Z" in
        let plus2 = Xdm_datetime.date_time_of_string "2008-06-09T14:00:00+02:00" in
        check Alcotest.int "same instant" 0 (Xdm_datetime.compare utc plus2));
    t "leap years" (fun () ->
        check Alcotest.bool "2000" true (Xdm_datetime.is_leap_year 2000);
        check Alcotest.bool "1900" false (Xdm_datetime.is_leap_year 1900);
        check Alcotest.bool "2008" true (Xdm_datetime.is_leap_year 2008);
        check Alcotest.int "feb 2008" 29 (Xdm_datetime.days_in_month ~year:2008 ~month:2));
    t "add dayTime duration" (fun () ->
        let d = Xdm_datetime.date_of_string "2008-06-09" in
        let d' = Xdm_datetime.add_duration d (Xdm_duration.of_string "P3D") in
        check Alcotest.string "12th" "2008-06-12" (Xdm_datetime.date_to_string d'));
    t "add yearMonth duration with day clamping" (fun () ->
        let d = Xdm_datetime.date_of_string "2008-01-31" in
        let d' = Xdm_datetime.add_duration d (Xdm_duration.of_string "P1M") in
        check Alcotest.string "clamped" "2008-02-29" (Xdm_datetime.date_to_string d'));
    t "difference" (fun () ->
        let a = Xdm_datetime.date_of_string "2008-06-12"
        and b = Xdm_datetime.date_of_string "2008-06-09" in
        check (Alcotest.float 0.001) "3 days" (3. *. 86400.)
          (Xdm_datetime.difference a b).Xdm_duration.seconds);
    t "month boundary arithmetic" (fun () ->
        let d = Xdm_datetime.date_of_string "2008-12-31" in
        let d' = Xdm_datetime.add_duration d (Xdm_duration.of_string "P1D") in
        check Alcotest.string "new year" "2009-01-01" (Xdm_datetime.date_to_string d'));
    t "invalid dates rejected" (fun () ->
        List.iter
          (fun s ->
            match Xdm_datetime.date_of_string s with
            | exception Failure _ -> ()
            | _ -> Alcotest.failf "%S should fail" s)
          [ "2008-13-01"; "2008-02-30"; "2008/01/01"; "garbage" ]);
  ]

let atomic_tests =
  [
    t "canonical strings" (fun () ->
        check Alcotest.string "int" "42" (A.to_string (A.Integer 42));
        check Alcotest.string "true" "true" (A.to_string (A.Boolean true));
        check Alcotest.string "dec" "1.5" (A.to_string (A.Decimal 1.5));
        check Alcotest.string "dbl int" "3" (A.to_string (A.Double 3.));
        check Alcotest.string "NaN" "NaN" (A.to_string (A.Double Float.nan));
        check Alcotest.string "INF" "INF" (A.to_string (A.Double Float.infinity)));
    t "cast string to numerics" (fun () ->
        check Alcotest.bool "int" true (A.cast ~target:A.T_integer (A.String " 7 ") = A.Integer 7);
        check Alcotest.bool "dbl" true (A.cast ~target:A.T_double (A.String "1e3") = A.Double 1000.));
    t "cast boolean lexical space" (fun () ->
        check Alcotest.bool "1" true (A.cast ~target:A.T_boolean (A.String "1") = A.Boolean true);
        check Alcotest.bool "false" true (A.cast ~target:A.T_boolean (A.String "false") = A.Boolean false);
        match A.cast ~target:A.T_boolean (A.String "yes") with
        | exception A.Cast_error _ -> ()
        | _ -> Alcotest.fail "expected cast error");
    t "numeric to boolean" (fun () ->
        check Alcotest.bool "0" true (A.cast ~target:A.T_boolean (A.Integer 0) = A.Boolean false);
        check Alcotest.bool "NaN" true (A.cast ~target:A.T_boolean (A.Double Float.nan) = A.Boolean false));
    t "double to integer truncates" (fun () ->
        check Alcotest.bool "3" true (A.cast ~target:A.T_integer (A.Double 3.9) = A.Integer 3);
        check Alcotest.bool "-3" true (A.cast ~target:A.T_integer (A.Double (-3.9)) = A.Integer (-3)));
    t "INF to integer fails" (fun () ->
        match A.cast ~target:A.T_integer (A.Double Float.infinity) with
        | exception A.Cast_error _ -> ()
        | _ -> Alcotest.fail "expected cast error");
    t "date/dateTime casts" (fun () ->
        let dt = A.cast ~target:A.T_date_time (A.String "2008-06-09T10:00:00") in
        let d = A.cast ~target:A.T_date dt in
        check Alcotest.string "date" "2008-06-09" (A.to_string d));
    t "duration subtype casts" (fun () ->
        let d = A.cast ~target:A.T_year_month_duration (A.String "P1Y2M3DT4H") in
        check Alcotest.string "ym only" "P1Y2M" (A.to_string d));
    t "derives_from" (fun () ->
        check Alcotest.bool "int<:dec" true (A.derives_from A.T_integer A.T_decimal);
        check Alcotest.bool "dec!<:int" false (A.derives_from A.T_decimal A.T_integer);
        check Alcotest.bool "any" true (A.derives_from A.T_string A.T_any_atomic);
        check Alcotest.bool "ymd<:dur" true (A.derives_from A.T_year_month_duration A.T_duration));
    t "castable" (fun () ->
        check Alcotest.bool "yes" true (A.castable ~target:A.T_integer (A.String "5"));
        check Alcotest.bool "no" false (A.castable ~target:A.T_integer (A.String "five")));
    t "promotion" (fun () ->
        match A.promote_pair (A.Integer 1) (A.Double 2.) with
        | A.Double _, A.Double _ -> ()
        | _ -> Alcotest.fail "expected double pair");
    t "untyped promotes to double" (fun () ->
        match A.promote_pair (A.Untyped "2.5") (A.Integer 1) with
        | A.Double 2.5, A.Double 1. -> ()
        | _ -> Alcotest.fail "expected doubles");
    t "compare across numeric types" (fun () ->
        check Alcotest.int "1 < 1.5" (-1) (A.compare_value (A.Integer 1) (A.Decimal 1.5));
        check Alcotest.int "2.0 = 2" 0 (A.compare_value (A.Double 2.) (A.Integer 2)));
    t "string comparison" (fun () ->
        check Alcotest.bool "lt" true (A.compare_value (A.String "abc") (A.String "abd") < 0));
    t "incomparable types raise" (fun () ->
        match A.compare_value (A.Integer 1) (A.Boolean true) with
        | exception A.Type_error _ -> ()
        | _ -> Alcotest.fail "expected type error");
    t "NaN is not equal to NaN (eq)" (fun () ->
        check Alcotest.bool "ne" false (A.equal_value (A.Double Float.nan) (A.Double Float.nan)));
    t "NaN same_key groups" (fun () ->
        check Alcotest.bool "same" true (A.same_key (A.Double Float.nan) (A.Double Float.nan)));
    t "arithmetic basics" (fun () ->
        check Alcotest.bool "add" true (A.add (A.Integer 2) (A.Integer 3) = A.Integer 5);
        check Alcotest.bool "int div is decimal" true (A.divide (A.Integer 1) (A.Integer 2) = A.Decimal 0.5);
        check Alcotest.bool "idiv" true (A.integer_divide (A.Integer 7) (A.Integer 2) = A.Integer 3);
        check Alcotest.bool "mod" true (A.modulo (A.Integer 7) (A.Integer 2) = A.Integer 1));
    t "division by zero" (fun () ->
        match A.divide (A.Integer 1) (A.Integer 0) with
        | exception Division_by_zero -> ()
        | _ -> Alcotest.fail "expected Division_by_zero");
    t "double division by zero gives INF" (fun () ->
        check Alcotest.bool "INF" true (A.divide (A.Double 1.) (A.Double 0.) = A.Double Float.infinity));
    t "date minus date is duration" (fun () ->
        let a = A.cast ~target:A.T_date (A.String "2008-06-12") in
        let b = A.cast ~target:A.T_date (A.String "2008-06-09") in
        match A.subtract a b with
        | A.Day_time_duration d ->
            check (Alcotest.float 0.01) "3d" (3. *. 86400.) d.Xdm_duration.seconds
        | _ -> Alcotest.fail "expected dayTimeDuration");
    t "date plus duration" (fun () ->
        let d = A.cast ~target:A.T_date (A.String "2008-06-09") in
        let dur = A.cast ~target:A.T_day_time_duration (A.String "P3D") in
        check Alcotest.string "12th" "2008-06-12" (A.to_string (A.add d dur)));
    t "duration times number" (fun () ->
        let dur = A.cast ~target:A.T_day_time_duration (A.String "PT1H") in
        check Alcotest.string "2h" "PT2H" (A.to_string (A.multiply dur (A.Integer 2))));
    t "negate" (fun () ->
        check Alcotest.bool "-5" true (A.negate (A.Integer 5) = A.Integer (-5)));
  ]

let item_tests =
  [
    t "effective boolean of sequences" (fun () ->
        check Alcotest.bool "empty" false (I.effective_boolean []);
        check Alcotest.bool "string" true (I.effective_boolean (I.of_string "x"));
        check Alcotest.bool "empty string" false (I.effective_boolean (I.of_string ""));
        check Alcotest.bool "zero" false (I.effective_boolean (I.of_int 0));
        check Alcotest.bool "NaN" false (I.effective_boolean (I.of_float Float.nan));
        let node = Dom.create_element (Xmlb.Qname.make "a") in
        check Alcotest.bool "node first" true (I.effective_boolean [ I.Node node; I.Node node ]));
    t "ebv error on multi-atomic" (fun () ->
        match I.effective_boolean (I.of_int 1 @ I.of_int 2) with
        | exception A.Type_error _ -> ()
        | _ -> Alcotest.fail "expected FORG0006");
    t "atomization of nodes is untyped" (fun () ->
        let doc = Dom.of_string "<a>42</a>" in
        match I.atomize [ I.Node doc ] with
        | [ A.Untyped "42" ] -> ()
        | _ -> Alcotest.fail "expected untyped 42");
    t "comment atomizes to string" (fun () ->
        let c = Dom.create_comment "note" in
        match I.atomize [ I.Node c ] with
        | [ A.String "note" ] -> ()
        | _ -> Alcotest.fail "expected string");
    t "sequence_string joins with space" (fun () ->
        check Alcotest.string "joined" "1 2 3"
          (I.sequence_string (I.of_int 1 @ I.of_int 2 @ I.of_int 3)));
    t "singleton helpers enforce cardinality" (fun () ->
        (match I.singleton [] with
        | exception A.Type_error _ -> ()
        | _ -> Alcotest.fail "expected error");
        match I.singleton (I.of_int 1 @ I.of_int 2) with
        | exception A.Type_error _ -> ()
        | _ -> Alcotest.fail "expected error");
    t "document_order sorts and dedups" (fun () ->
        let doc = Dom.of_string "<r><a/><b/></r>" in
        let a = List.hd (Dom.get_elements_by_local_name doc "a") in
        let b = List.hd (Dom.get_elements_by_local_name doc "b") in
        let sorted = I.document_order [ I.Node b; I.Node a; I.Node b ] in
        check Alcotest.int "two" 2 (List.length sorted);
        match sorted with
        | [ I.Node first; _ ] -> check Alcotest.bool "a first" true (Dom.equal first a)
        | _ -> Alcotest.fail "bad shape");
    t "union intersect except" (fun () ->
        let doc = Dom.of_string "<r><a/><b/><c/></r>" in
        let get n = I.Node (List.hd (Dom.get_elements_by_local_name doc n)) in
        let ab = [ get "a"; get "b" ] and bc = [ get "b"; get "c" ] in
        check Alcotest.int "union" 3 (List.length (I.union ab bc));
        check Alcotest.int "intersect" 1 (List.length (I.intersect ab bc));
        check Alcotest.int "except" 1 (List.length (I.except ab bc)));
    t "item_number parses or NaN" (fun () ->
        check (Alcotest.float 0.001) "3.5" 3.5 (I.item_number (I.Atomic (A.String "3.5")));
        check Alcotest.bool "NaN" true (Float.is_nan (I.item_number (I.Atomic (A.String "x")))));
  ]

let suite = duration_tests @ datetime_tests @ atomic_tests @ item_tests
