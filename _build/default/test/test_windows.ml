(* The window tree in isolation: materialization shape, registries,
   write-backs, history, geometry, and the paper's own window queries
   from §4.2.1 run against the materialized XML. *)

module W = Xqib.Windows
module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let same_origin_tree () =
  (* top(http://app/) -> [left, right(child1, child2)] *)
  let top = W.create ~name:"top_window" ~href:"http://app.example/" () in
  let left = W.create ~name:"leftframe" ~href:"http://app.example/left" () in
  let right = W.create ~name:"rightframe" ~href:"http://app.example/right" () in
  let c1 = W.create ~name:"child1" ~href:"http://app.example/c1" () in
  let c2 = W.create ~name:"child2" ~href:"http://app.example/c2" () in
  W.add_frame ~parent:top left;
  W.add_frame ~parent:top right;
  W.add_frame ~parent:right c1;
  W.add_frame ~parent:right c2;
  top

let accessor = Xqib.Origin.of_uri "http://app.example/"

let structure_tests =
  [
    t "materialized tree mirrors the frame hierarchy" (fun () ->
        let top = same_origin_tree () in
        let v = W.materialize ~accessor top in
        let root = W.view_root v in
        check (Alcotest.option Alcotest.string) "top name" (Some "top_window")
          (Dom.attribute_local root "name");
        let windows = Dom.get_elements_by_local_name root "window" in
        check Alcotest.int "five windows" 5 (List.length windows);
        W.release v);
    t "status, location and geometry children exist" (fun () ->
        let top = same_origin_tree () in
        top.W.status <- "ready";
        let v = W.materialize ~accessor top in
        let root = W.view_root v in
        let child name =
          List.exists
            (fun c ->
              match Dom.name c with
              | Some q -> q.Xmlb.Qname.local = name
              | None -> false)
            (Dom.children root)
        in
        check Alcotest.bool "status" true (child "status");
        check Alcotest.bool "location" true (child "location");
        check Alcotest.bool "lastModified" true (child "lastModified");
        check Alcotest.bool "geometry" true (child "geometry");
        check Alcotest.bool "frames" true (child "frames");
        W.release v);
    t "node_of_window and window_at are inverses" (fun () ->
        let top = same_origin_tree () in
        let v = W.materialize ~accessor top in
        let left = List.hd top.W.frames in
        let node = Option.get (W.node_of_window v left) in
        check Alcotest.bool "round trip" true
          (match W.window_at v node with Some w -> w == left | None -> false);
        W.release v);
    t "window_of_node climbs from descendants" (fun () ->
        let top = same_origin_tree () in
        let v = W.materialize ~accessor top in
        let left_node = Option.get (W.node_of_window v (List.hd top.W.frames)) in
        let status = List.hd (Dom.children left_node) in
        check Alcotest.bool "resolved" true
          (match W.window_of_node v status with
          | Some w -> w == List.hd top.W.frames
          | None -> false);
        W.release v);
    t "find_by_name searches the whole tree" (fun () ->
        let top = same_origin_tree () in
        check Alcotest.bool "deep child" true (W.find_by_name top "child2" <> None);
        check Alcotest.bool "missing" true (W.find_by_name top "nope" = None));
  ]

let writeback_tests =
  [
    t "status write-back" (fun () ->
        let top = same_origin_tree () in
        let v = W.materialize ~accessor top in
        let root = W.view_root v in
        let status =
          List.find
            (fun c -> Dom.name c <> None && (Option.get (Dom.name c)).Xmlb.Qname.local = "status")
            (Dom.children root)
        in
        Dom.set_value status "Welcome";
        check Alcotest.string "propagated" "Welcome" top.W.status;
        W.release v);
    t "href write-back records navigation and fires the hook" (fun () ->
        let top = same_origin_tree () in
        let navigations = ref [] in
        let v =
          W.materialize ~accessor
            ~on_navigate:(fun w href -> navigations := (w.W.wname, href) :: !navigations)
            top
        in
        let root = W.view_root v in
        let href =
          List.hd (Dom.get_elements_by_local_name root "href")
        in
        Dom.set_value href "http://app.example/next";
        check Alcotest.string "href updated" "http://app.example/next" top.W.href;
        check Alcotest.bool "history pushed" true (top.W.history_back <> []);
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "hook" [ ("top_window", "http://app.example/next") ] !navigations;
        W.release v);
    t "cross-origin write-back is rejected and counted" (fun () ->
        let top = same_origin_tree () in
        (* accessor from a different origin sees shells; but materialize
           with Allow_all then write with a policy-checking view *)
        let evil_accessor = Xqib.Origin.of_uri "http://evil.example/" in
        let v = W.materialize ~policy:Xqib.Origin.Same_origin ~accessor:evil_accessor top in
        (* everything is a shell; no write-back possible, but mutating a
           shell must not corrupt the windows *)
        let root = W.view_root v in
        Dom.set_attribute root (Xmlb.Qname.make "name") "hacked";
        check Alcotest.string "untouched" "top_window" top.W.wname;
        W.release v);
    t "release stops the observer" (fun () ->
        let top = same_origin_tree () in
        let v = W.materialize ~accessor top in
        let root = W.view_root v in
        W.release v;
        let status =
          List.find
            (fun c -> Dom.name c <> None && (Option.get (Dom.name c)).Xmlb.Qname.local = "status")
            (Dom.children root)
        in
        Dom.set_value status "after-release";
        check Alcotest.string "not propagated" "" top.W.status);
  ]

let geometry_tests =
  [
    t "move_by and move_to" (fun () ->
        let w = W.create () in
        W.move_to w ~x:100 ~y:50;
        W.move_by w ~dx:(-10) ~dy:25;
        check Alcotest.int "x" 90 w.W.screen_x;
        check Alcotest.int "y" 75 w.W.screen_y);
    t "browser:windowMoveTo from XQuery" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        ignore
          (Xqib.Page.run_xquery b b.B.top_window
             "browser:windowMoveTo(browser:self(), 300, 200)");
        check Alcotest.int "x" 300 b.B.top_window.W.screen_x;
        check Alcotest.int "y" 200 b.B.top_window.W.screen_y);
    t "geometry visible in the window node" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        W.move_to b.B.top_window ~x:42 ~y:7;
        check Alcotest.string "screenX" "42"
          (Xdm_item.to_display_string
             (Xqib.Page.run_xquery b b.B.top_window
                "string(browser:self()/geometry/screenX)")));
  ]

(* the paper's §4.2.1 closing example: a red warning in every frame not
   pointing to an https location *)
let paper_flwor_tests =
  [
    t "warning FLWOR over all frames (§4.2.1)" (fun () ->
        let b = B.create ~href:"https://secure.example/" () in
        Xqib.Page.load b "<html><body>top page</body></html>";
        (* two same-origin frames: one https, one http — the policy
           considers scheme, so use Allow_all to reach both documents,
           matching the paper's premise that the app may access them *)
        let b = B.create ~policy:Xqib.Origin.Allow_all ~href:"https://secure.example/" () in
        Xqib.Page.load b "<html><body>top page</body></html>";
        let f1 = W.create ~name:"sec" ~href:"https://secure.example/f1" () in
        f1.W.document <- Dom.of_string "<html><body>safe</body></html>";
        let f2 = W.create ~name:"plain" ~href:"http://plain.example/f2" () in
        f2.W.document <- Dom.of_string "<html><body>unsafe</body></html>";
        W.add_frame ~parent:b.B.top_window f1;
        W.add_frame ~parent:b.B.top_window f2;
        (* the paper's literal word order: "into $d/html/body as first" *)
        ignore
          (Xqib.Page.run_xquery b b.B.top_window
             {|for $x in browser:top()//window
               let $d := browser:document($x)
               where not ($x/location/href ftcontains "https")
               return
                 insert node <h1><font color="red">Warning: this page
                 is not secure</font></h1>
                 into $d/html/body as first |});
        check Alcotest.int "warning inserted first" 1
          (List.length (Dom.get_elements_by_local_name f2.W.document "h1"));
        (match Dom.children (List.hd (Dom.get_elements_by_local_name f2.W.document "body")) with
        | first :: _ ->
            check Alcotest.string "h1 is first" "h1"
              (Option.get (Dom.name first)).Xmlb.Qname.local
        | [] -> Alcotest.fail "empty body"));
    t "warning FLWOR (standard insert order)" (fun () ->
        let b = B.create ~policy:Xqib.Origin.Allow_all ~href:"https://secure.example/" () in
        Xqib.Page.load b "<html><body>top page</body></html>";
        let f1 = W.create ~name:"sec" ~href:"https://secure.example/f1" () in
        f1.W.document <- Dom.of_string "<html><body>safe</body></html>";
        let f2 = W.create ~name:"plain" ~href:"http://plain.example/f2" () in
        f2.W.document <- Dom.of_string "<html><body>unsafe</body></html>";
        W.add_frame ~parent:b.B.top_window f1;
        W.add_frame ~parent:b.B.top_window f2;
        ignore
          (Xqib.Page.run_xquery b b.B.top_window
             {|for $x in browser:top()//window
               let $d := browser:document($x)
               where not ($x/location/href ftcontains "https")
               return
                 insert node <h1><font color="red">Warning: this page is not secure</font></h1>
                 as first into $d/html/body|});
        check Alcotest.int "warning in the http frame" 1
          (List.length (Dom.get_elements_by_local_name f2.W.document "h1"));
        check Alcotest.int "no warning in the https frame" 0
          (List.length (Dom.get_elements_by_local_name f1.W.document "h1")));
    t "paper: looking for leftframe (§4.2.1)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        let lf = W.create ~name:"leftframe" ~href:"http://localhost/lf" () in
        W.add_frame ~parent:b.B.top_window lf;
        check Alcotest.string "found" "1"
          (Xdm_item.to_display_string
             (Xqib.Page.run_xquery b b.B.top_window
                {|count(browser:top()//window[@name="leftframe"])|})));
    t "paper: declare $win as second frame, change its location" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        let f1 = W.create ~name:"f1" ~href:"http://localhost/1" () in
        let f2 = W.create ~name:"f2" ~href:"http://localhost/2" () in
        W.add_frame ~parent:b.B.top_window f1;
        W.add_frame ~parent:b.B.top_window f2;
        Http_sim.register_doc b.B.http ~uri:"http://localhost/next"
          ~content_type:"text/html" "<html><body>arrived</body></html>";
        ignore
          (Xqib.Page.run_xquery b b.B.top_window
             {|{ declare variable $win := browser:self()/frames/window[2];
                 replace value of node $win/location/href with "http://localhost/next" }|});
        check Alcotest.string "navigated" "http://localhost/next" f2.W.href;
        (* navigation loaded the new page into the frame *)
        check Alcotest.string "page loaded" "arrived" (Dom.string_value f2.W.document));
  ]

let suite = structure_tests @ writeback_tests @ geometry_tests @ paper_flwor_tests
