(* XML infrastructure: QNames, escaping, parser, serializer. *)

open Xmlb

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

(* ---------- qnames ---------- *)

let qname_tests =
  [
    t "of_string splits prefix" (fun () ->
        let q = Qname.of_string "html:div" in
        check (Alcotest.option Alcotest.string) "prefix" (Some "html") q.Qname.prefix;
        check Alcotest.string "local" "div" q.Qname.local);
    t "of_string bare name" (fun () ->
        let q = Qname.of_string "div" in
        check (Alcotest.option Alcotest.string) "prefix" None q.Qname.prefix);
    t "equality ignores prefix" (fun () ->
        let a = Qname.make ~uri:"u" ~prefix:"a" "x" in
        let b = Qname.make ~uri:"u" ~prefix:"b" "x" in
        check Alcotest.bool "equal" true (Qname.equal a b));
    t "equality distinguishes uri" (fun () ->
        let a = Qname.make ~uri:"u1" "x" and b = Qname.make ~uri:"u2" "x" in
        check Alcotest.bool "not equal" false (Qname.equal a b));
    t "clark notation" (fun () ->
        check Alcotest.string "clark" "{u}x" (Qname.to_clark (Qname.make ~uri:"u" "x")));
    t "env resolve via prefix" (fun () ->
        let env = Qname.Env.bind Qname.Env.empty ~prefix:"p" ~uri:"urn:p" in
        let q = Qname.Env.resolve env ~use_default:false (Qname.of_string "p:a") in
        check (Alcotest.option Alcotest.string) "uri" (Some "urn:p") q.Qname.uri);
    t "env default namespace applies to elements only" (fun () ->
        let env = Qname.Env.bind_default Qname.Env.empty ~uri:(Some "urn:d") in
        let e = Qname.Env.resolve env ~use_default:true (Qname.of_string "a") in
        let a = Qname.Env.resolve env ~use_default:false (Qname.of_string "a") in
        check (Alcotest.option Alcotest.string) "element" (Some "urn:d") e.Qname.uri;
        check (Alcotest.option Alcotest.string) "attr" None a.Qname.uri);
    t "unbound prefix fails" (fun () ->
        Alcotest.check_raises "failure" (Failure "XPST0081: unbound prefix \"zz\"")
          (fun () ->
            ignore (Qname.Env.resolve Qname.Env.empty ~use_default:false (Qname.of_string "zz:a"))));
    t "xml prefix predefined" (fun () ->
        let q = Qname.Env.resolve Qname.Env.empty ~use_default:false (Qname.of_string "xml:lang") in
        check (Alcotest.option Alcotest.string) "uri" (Some Qname.Ns.xml) q.Qname.uri);
  ]

(* ---------- escaping ---------- *)

let escape_tests =
  [
    t "text escaping" (fun () ->
        check Alcotest.string "escaped" "a&amp;b&lt;c&gt;d" (Xml_escape.text "a&b<c>d"));
    t "attribute escaping quotes" (fun () ->
        check Alcotest.string "escaped" "&quot;x&quot;" (Xml_escape.attribute "\"x\""));
    t "unescape predefined entities" (fun () ->
        check Alcotest.string "unescaped" "<a>&'\"" (Xml_escape.unescape "&lt;a&gt;&amp;&apos;&quot;"));
    t "unescape decimal reference" (fun () ->
        check Alcotest.string "A" "A" (Xml_escape.unescape "&#65;"));
    t "unescape hex reference" (fun () ->
        check Alcotest.string "A" "A" (Xml_escape.unescape "&#x41;"));
    t "unescape multibyte" (fun () ->
        check Alcotest.string "euro" "\xE2\x82\xAC" (Xml_escape.unescape "&#x20AC;"));
    t "unknown entity fails" (fun () ->
        match Xml_escape.unescape "&bogus;" with
        | exception Failure _ -> ()
        | s -> Alcotest.failf "expected failure, got %S" s);
    t "utf8 round trip" (fun () ->
        let cps = [ 0x41; 0xE9; 0x20AC; 0x1F600 ] in
        let s = String.concat "" (List.map Xml_escape.utf8_of_code_point cps) in
        check (Alcotest.list Alcotest.int) "round trip" cps (Xml_escape.code_points s));
    t "invalid utf8 detected" (fun () ->
        match Xml_escape.code_points "\xFF\xFE" with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected failure");
  ]

(* ---------- parser ---------- *)

let parse_root = Xml_parser.parse_root

let parser_tests =
  [
    t "simple element" (fun () ->
        match parse_root "<a/>" with
        | Xml_parser.Element (n, [], []) -> check Alcotest.string "name" "a" n.Qname.local
        | _ -> Alcotest.fail "bad shape");
    t "attributes and text" (fun () ->
        match parse_root "<a x=\"1\" y='2'>hi</a>" with
        | Xml_parser.Element (_, attrs, [ Xml_parser.Text txt ]) ->
            check Alcotest.int "attrs" 2 (List.length attrs);
            check Alcotest.string "text" "hi" txt
        | _ -> Alcotest.fail "bad shape");
    t "nested elements" (fun () ->
        match parse_root "<a><b><c/></b></a>" with
        | Xml_parser.Element (_, _, [ Xml_parser.Element (_, _, [ Xml_parser.Element (c, _, []) ]) ]) ->
            check Alcotest.string "c" "c" c.Qname.local
        | _ -> Alcotest.fail "bad shape");
    t "entities in text and attributes" (fun () ->
        match parse_root "<a x=\"&lt;&amp;\">&gt;</a>" with
        | Xml_parser.Element (_, [ { Xml_parser.value; _ } ], [ Xml_parser.Text txt ]) ->
            check Alcotest.string "attr" "<&" value;
            check Alcotest.string "text" ">" txt
        | _ -> Alcotest.fail "bad shape");
    t "comment and pi" (fun () ->
        match parse_root "<a><!--c--><?target data?></a>" with
        | Xml_parser.Element (_, _, [ Xml_parser.Comment c; Xml_parser.Pi (tg, d) ]) ->
            check Alcotest.string "comment" "c" c;
            check Alcotest.string "target" "target" tg;
            check Alcotest.string "data" "data" d
        | _ -> Alcotest.fail "bad shape");
    t "cdata becomes text" (fun () ->
        match parse_root "<a><![CDATA[<raw>&]]></a>" with
        | Xml_parser.Element (_, _, [ Xml_parser.Text txt ]) ->
            check Alcotest.string "cdata" "<raw>&" txt
        | _ -> Alcotest.fail "bad shape");
    t "xml declaration and doctype are skipped" (fun () ->
        match parse_root "<?xml version=\"1.0\"?><!DOCTYPE html><a/>" with
        | Xml_parser.Element (n, _, _) -> check Alcotest.string "a" "a" n.Qname.local
        | _ -> Alcotest.fail "bad shape");
    t "default namespace declaration" (fun () ->
        match parse_root "<a xmlns=\"urn:x\"><b/></a>" with
        | Xml_parser.Element (a, _, [ Xml_parser.Element (b, _, _) ]) ->
            check (Alcotest.option Alcotest.string) "a uri" (Some "urn:x") a.Qname.uri;
            check (Alcotest.option Alcotest.string) "b uri" (Some "urn:x") b.Qname.uri
        | _ -> Alcotest.fail "bad shape");
    t "prefixed namespaces resolve" (fun () ->
        match parse_root "<p:a xmlns:p=\"urn:p\" p:x=\"1\"/>" with
        | Xml_parser.Element (a, [ attr ], _) ->
            check (Alcotest.option Alcotest.string) "el" (Some "urn:p") a.Qname.uri;
            check (Alcotest.option Alcotest.string) "attr" (Some "urn:p")
              attr.Xml_parser.name.Qname.uri
        | _ -> Alcotest.fail "bad shape");
    t "namespace scoping: inner rebind" (fun () ->
        match parse_root "<a xmlns:p=\"urn:1\"><p:b xmlns:p=\"urn:2\"/><p:c/></a>" with
        | Xml_parser.Element (_, _, [ Xml_parser.Element (b, _, _); Xml_parser.Element (c, _, _) ]) ->
            check (Alcotest.option Alcotest.string) "b" (Some "urn:2") b.Qname.uri;
            check (Alcotest.option Alcotest.string) "c" (Some "urn:1") c.Qname.uri
        | _ -> Alcotest.fail "bad shape");
    t "unclosed element fails" (fun () ->
        match parse_root "<a><b></a>" with
        | exception Xml_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    t "mismatched close tag fails" (fun () ->
        match parse_root "<a></b>" with
        | exception Xml_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    t "multiple roots rejected by parse_root" (fun () ->
        match parse_root "<a/><b/>" with
        | exception Xml_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    t "IE uppercase quirk" (fun () ->
        let options = { Xml_parser.default_options with Xml_parser.uppercase_tags = true } in
        match Xml_parser.parse_root ~options "<div><p/></div>" with
        | Xml_parser.Element (d, _, [ Xml_parser.Element (p, _, _) ]) ->
            check Alcotest.string "DIV" "DIV" d.Qname.local;
            check Alcotest.string "P" "P" p.Qname.local
        | _ -> Alcotest.fail "bad shape");
    t "script content is raw text" (fun () ->
        match parse_root "<html><script>if (a < b && c > d) { x(); }</script></html>" with
        | Xml_parser.Element (_, _, [ Xml_parser.Element (_, _, [ Xml_parser.Text s ]) ]) ->
            check Alcotest.string "raw" "if (a < b && c > d) { x(); }" s
        | _ -> Alcotest.fail "bad shape");
    t "script CDATA markers are stripped" (fun () ->
        match parse_root "<s><script><![CDATA[1 < 2]]></script></s>" with
        | Xml_parser.Element (_, _, [ Xml_parser.Element (_, _, [ Xml_parser.Text s ]) ]) ->
            check Alcotest.string "stripped" "1 < 2" s
        | _ -> Alcotest.fail "bad shape");
    t "boolean attribute without value" (fun () ->
        match parse_root "<input disabled/>" with
        | Xml_parser.Element (_, [ { Xml_parser.name; value } ], _) ->
            check Alcotest.string "name" "disabled" name.Qname.local;
            check Alcotest.string "value" "disabled" value
        | _ -> Alcotest.fail "bad shape");
  ]

(* ---------- serializer ---------- *)

let roundtrip src =
  Xml_serializer.to_string (parse_root src)

let serializer_tests =
  [
    t "simple round trip" (fun () ->
        check Alcotest.string "rt" "<a x=\"1\"><b>hi</b></a>" (roundtrip "<a x=\"1\"><b>hi</b></a>"));
    t "self-closing normalization" (fun () ->
        check Alcotest.string "rt" "<a/>" (roundtrip "<a></a>"));
    t "escapes in output" (fun () ->
        check Alcotest.string "rt" "<a>&lt;&amp;&gt;</a>" (roundtrip "<a>&lt;&amp;&gt;</a>"));
    t "script body stays raw" (fun () ->
        check Alcotest.string "rt" "<script>a < b</script>" (roundtrip "<script>a < b</script>"));
    t "indentation" (fun () ->
        let opts = { Xml_serializer.indent = true; xml_declaration = false } in
        let s = Xml_serializer.to_string ~options:opts (parse_root "<a><b/><c/></a>") in
        check Alcotest.bool "has newline" true (String.contains s '\n'));
    t "xml declaration" (fun () ->
        let opts = { Xml_serializer.indent = false; xml_declaration = true } in
        let s = Xml_serializer.to_string ~options:opts (parse_root "<a/>") in
        check Alcotest.bool "decl" true
          (String.length s > 5 && String.sub s 0 5 = "<?xml"));
    t "namespace declarations are regenerated on output" (fun () ->
        (* constructed names carry URIs but no literal xmlns attrs *)
        let el =
          Xml_parser.Element
            ( Qname.make ~uri:"urn:n" ~prefix:"p" "root",
              [ { Xml_parser.name = Qname.make ~uri:"urn:a" ~prefix:"q" "x"; value = "1" } ],
              [ Xml_parser.Element (Qname.make ~uri:"urn:n" ~prefix:"p" "kid", [], []) ] )
        in
        let out = Xml_serializer.to_string el in
        check Alcotest.bool "xmlns:p" true
          (let re = Str.regexp ".*xmlns:p=\"urn:n\".*" in
           Str.string_match re out 0);
        check Alcotest.bool "xmlns:q" true
          (let re = Str.regexp ".*xmlns:q=\"urn:a\".*" in
           Str.string_match re out 0);
        (* declarations are not repeated on the child *)
        check Alcotest.bool "child undecorated" true
          (let re = Str.regexp ".*<p:kid/>.*" in
           Str.string_match re out 0);
        (* and the round trip preserves the URIs *)
        match Xml_parser.parse_root out with
        | Xml_parser.Element (n, [ a ], [ Xml_parser.Element (k, _, _) ]) ->
            check (Alcotest.option Alcotest.string) "root uri" (Some "urn:n") n.Qname.uri;
            check (Alcotest.option Alcotest.string) "attr uri" (Some "urn:a")
              a.Xml_parser.name.Qname.uri;
            check (Alcotest.option Alcotest.string) "kid uri" (Some "urn:n") k.Qname.uri
        | _ -> Alcotest.fail "bad reparse shape");
    t "default namespace regenerated" (fun () ->
        let el = Xml_parser.Element (Qname.make ~uri:"urn:d" "plain", [], []) in
        check Alcotest.string "xmlns" "<plain xmlns=\"urn:d\"/>"
          (Xml_serializer.to_string el));
    t "namespaced dom round trip through xquery constructor" (fun () ->
        let r =
          Xquery.Engine.eval_string
            "declare namespace p = 'urn:pp'; <p:a><p:b/></p:a>"
        in
        match r with
        | [ Xdm_item.Node n ] ->
            let out = Dom.serialize n in
            let doc = Dom.of_string out in
            let b = List.hd (Dom.get_elements_by_local_name doc "b") in
            check (Alcotest.option Alcotest.string) "uri preserved" (Some "urn:pp")
              (Option.get (Dom.name b)).Qname.uri
        | _ -> Alcotest.fail "expected one node");
    t "double parse is stable" (fun () ->
        let once = roundtrip "<a p='1'>t<b/><!--c--></a>" in
        check Alcotest.string "stable" once (roundtrip once));
  ]

let suite = qname_tests @ escape_tests @ parser_tests @ serializer_tests
