(* The JavaScript-subset baseline interpreter and its DOM API (§2.1,
   §2.2), including coexistence with XQuery on one page (§6.2). *)

module J = Minijs.Js_interp
module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let () = J.install ()

let fresh () =
  let b = B.create () in
  Xqib.Page.load b "<html><body/></html>";
  b

let eval_str b src = J.to_display (J.eval_in_window b b.B.top_window src)

let e name expected src =
  t name (fun () ->
      let b = fresh () in
      check Alcotest.string src expected (eval_str b src))

let language_tests =
  [
    e "arithmetic" "7" "1 + 2 * 3";
    e "string concat with +" "ab1" "'a' + 'b' + 1";
    e "division is float" "2.5" "5 / 2";
    e "modulo" "1" "7 % 2";
    e "comparison" "true" "2 >= 2";
    e "equality coerces" "true" "1 == '1'";
    e "strict equality does not" "false" "1 === '1'";
    e "logical short circuit value" "fallback" "null || 'fallback'";
    e "ternary" "yes" "1 < 2 ? 'yes' : 'no'";
    e "unary not" "false" "!1";
    e "typeof" "number" "typeof 42";
    e "string methods" "HELLO" "'hello'.toUpperCase()";
    e "indexOf" "2" "'abcd'.indexOf('c')";
    e "substring" "ell" "'hello'.substring(1, 4)";
    e "split and join" "a-b-c" "'a,b,c'.split(',').join('-')";
    e "array literal and length" "3" "[1,2,3].length";
    e "array index" "20" "[10,20,30][1]";
    e "array push" "4" "(function(){ var a = [1,2,3]; a.push(9); return a.length; })()";
    e "object literal property" "7" "({x: 7}).x";
    e "Math.floor" "3" "Math.floor(3.9)";
    e "parseInt" "42" "parseInt('42.9')";
    e "isNaN" "true" "isNaN(parseFloat('z'))";
    e "undefined display" "undefined" "undefined";
  ]

let statement_tests =
  [
    t "var, for loop and accumulation" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var total = 0; for (var i = 1; i <= 10; i++) { total += i; }";
        check Alcotest.string "sum" "55" (eval_str b "total"));
    t "while with break and continue" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var n = 0; var i = 0;\n\
           while (true) { i++; if (i % 2 == 0) continue; if (i > 9) break; n += i; }";
        check Alcotest.string "odd sum" "25" (eval_str b "n"));
    t "functions and closures" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "function mk(x) { return function(y) { return x + y; }; } var add5 = mk(5);";
        check Alcotest.string "closure" "12" (eval_str b "add5(7)"));
    t "recursion" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "function fact(n) { if (n <= 1) return 1; return n * fact(n - 1); }";
        check Alcotest.string "5!" "120" (eval_str b "fact(5)"));
    t "for-in over object keys" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var o = {a: 1, b: 2}; var n = 0; for (var k in o) { n += o[k]; }";
        check Alcotest.string "sum" "3" (eval_str b "n"));
    t "implicit globals assigned in functions" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window "function f() { leaked = 9; } f();";
        check Alcotest.string "leaked" "9" (eval_str b "leaked"));
    t "syntax error raises" (fun () ->
        let b = fresh () in
        match J.run_script b b.B.top_window "var = ;" with
        | exception Minijs.Js_lexer.Js_syntax_error _ -> ()
        | () -> Alcotest.fail "expected syntax error");
    t "runtime error raises" (fun () ->
        let b = fresh () in
        match J.run_script b b.B.top_window "nosuchfunction();" with
        | exception J.Js_error _ -> ()
        | () -> Alcotest.fail "expected Js_error");
  ]

let dom_tests =
  [
    t "getElementById and textContent" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><div id="d">hello</div></body></html>|};
        check Alcotest.string "text" "hello"
          (eval_str b "document.getElementById('d').textContent"));
    t "createElement / appendChild / setAttribute" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><div id="d"/></body></html>|};
        J.run_script b b.B.top_window
          "var el = document.createElement('span');\n\
           el.setAttribute('class', 'x');\n\
           el.appendChild(document.createTextNode('t'));\n\
           document.getElementById('d').appendChild(el);";
        let doc = B.document b in
        let span = List.hd (Dom.get_elements_by_local_name doc "span") in
        check (Alcotest.option Alcotest.string) "class" (Some "x")
          (Dom.attribute_local span "class");
        check Alcotest.string "text" "t" (Dom.string_value span));
    t "innerHTML set parses markup" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><div id="d"/></body></html>|};
        J.run_script b b.B.top_window
          "document.getElementById('d').innerHTML = '<b>bold</b> text';";
        let doc = B.document b in
        check Alcotest.int "b created" 1
          (List.length (Dom.get_elements_by_local_name doc "b")));
    t "style object maps to style attribute" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><div id="d"/></body></html>|};
        J.run_script b b.B.top_window
          "document.getElementById('d').style.backgroundColor = 'red';";
        let d = Option.get (Dom.get_element_by_id (B.document b) "d") in
        check (Alcotest.option Alcotest.string) "css" (Some "background-color: red")
          (Dom.attribute_local d "style"));
    t "getElementsByTagName" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><p/><p/><div/></body></html>|};
        check Alcotest.string "2 ps" "2" (eval_str b "document.getElementsByTagName('p').length"));
    t "parentNode / firstChild navigation" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><div id="d"><p id="p"/></div></body></html>|};
        check Alcotest.string "up" "d"
          (eval_str b "document.getElementById('p').parentNode.id");
        check Alcotest.string "down" "p"
          (eval_str b "document.getElementById('d').firstChild.id"));
    t "removeChild" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><div id="d"><p/></div></body></html>|};
        J.run_script b b.B.top_window
          "var d = document.getElementById('d'); d.removeChild(d.firstChild);";
        check Alcotest.string "empty" "0" (eval_str b "document.getElementById('d').childNodes.length"));
    t "document.evaluate runs XPath (§2.2)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><body><div>I love XQuery</div><div>meh</div></body></html>|};
        J.run_script b b.B.top_window
          "var r = document.evaluate(\"//div[contains(., 'love')]\", document, null,\n\
           XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null);";
        check Alcotest.string "snapshotLength" "1" (eval_str b "r.snapshotLength");
        check Alcotest.string "text" "I love XQuery" (eval_str b "r.snapshotItem(0).textContent"));
    t "paper §2.2 heart insertion runs verbatim" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/javascript">
            var allDivs, newElement;
            allDivs = document.evaluate("//div[contains(., 'love')]",
              document, null, XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null);
            if (allDivs.snapshotLength > 0) {
              newElement = document.createElement('img');
              newElement.src = 'http://img.example/heart.gif';
              document.body.insertBefore(newElement, document.body.firstChild);
            }
          </script></head><body><div>all you need is love</div></body></html>|};
        let doc = B.document b in
        match Dom.children (List.hd (Dom.get_elements_by_local_name doc "body")) with
        | first :: _ ->
            check Alcotest.string "img first" "img"
              (Option.get (Dom.name first)).Xmlb.Qname.local
        | [] -> Alcotest.fail "empty body");
    t "addEventListener receives event object" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><button id="b"/></body></html>|};
        J.run_script b b.B.top_window
          "var seen = ''; document.getElementById('b').addEventListener('onclick',\n\
           function(e) { seen = e.type + ':' + e.target.id; }, false);";
        B.click b (Option.get (Dom.get_element_by_id (B.document b) "b"));
        check Alcotest.string "event" "onclick:b" (eval_str b "seen"));
    t "window.status and alert" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window "window.status = 'Welcome'; alert('hey');";
        check Alcotest.string "status" "Welcome" b.B.top_window.Xqib.Windows.status;
        check (Alcotest.list Alcotest.string) "alert" [ "hey" ] (B.alerts b));
    t "setTimeout schedules on the virtual clock" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var fired = false; setTimeout(function() { fired = true; }, 100);";
        check Alcotest.string "not yet" "false" (eval_str b "fired");
        B.run b;
        check Alcotest.string "fired" "true" (eval_str b "fired");
        check (Alcotest.float 0.001) "0.1s" 0.1 (Virtual_clock.now b.B.clock));
    t "inline onclick handler in JS" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/javascript">
            function buy(e) { e.target.setAttribute("bought", "yes"); }
          </script></head>
          <body><input type="button" id="i" onclick="buy(event)"/></body></html>|};
        let input = Option.get (Dom.get_element_by_id (B.document b) "i") in
        B.click b input;
        check (Alcotest.option Alcotest.string) "bought" (Some "yes")
          (Dom.attribute_local input "bought"));
  ]

let coexistence_tests =
  [
    t "JS and XQuery share events and the DOM (§6.2)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head>
            <script type="text/javascript">
              function jsSide(e) { e.target.setAttribute("js", "1"); }
            </script>
            <script type="text/javascript">
              document.getElementById("search").addEventListener("onclick", jsSide, false);
            </script>
            <script type="text/xquery">
              declare updating function local:xqSide($evt, $obj) {
                insert node attribute xq { "1" } into $obj
              };
              on event "onclick" at //button[@id="search"] attach listener local:xqSide
            </script>
            </head><body><button id="search"/></body></html>|};
        let btn = Option.get (Dom.get_element_by_id (B.document b) "search") in
        B.click b btn;
        check (Alcotest.option Alcotest.string) "js saw it" (Some "1")
          (Dom.attribute_local btn "js");
        check (Alcotest.option Alcotest.string) "xquery saw it" (Some "1")
          (Dom.attribute_local btn "xq"));
    t "JS reads what XQuery wrote" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            insert node <made-by-xquery id="m">payload</made-by-xquery> into //body
            </script></head><body/></html>|};
        check Alcotest.string "payload" "payload"
          (eval_str b "document.getElementById('m').textContent"));
    t "JS-first execution order (§4.1)" (fun () ->
        (* JS runs before XQuery even when the XQuery tag comes first *)
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head>
            <script type="text/xquery">
              insert node <order v="xq-saw-{count(//marker)}"/> into //body
            </script>
            <script type="text/javascript">
              document.body.appendChild(document.createElement('marker'));
            </script>
            </head><body/></html>|};
        let doc = B.document b in
        let order = List.hd (Dom.get_elements_by_local_name doc "order") in
        check (Alcotest.option Alcotest.string) "marker existed before xquery"
          (Some "xq-saw-1") (Dom.attribute_local order "v"));
    t "document-order execution option" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          ~options:{ Xqib.Page.execution_order = `Document_order; run_inline_handlers = true }
          {|<html><head>
            <script type="text/xquery">
              insert node <order v="xq-saw-{count(//marker)}"/> into //body
            </script>
            <script type="text/javascript">
              document.body.appendChild(document.createElement('marker'));
            </script>
            </head><body/></html>|};
        let doc = B.document b in
        let order = List.hd (Dom.get_elements_by_local_name doc "order") in
        check (Alcotest.option Alcotest.string) "xquery first this time"
          (Some "xq-saw-0") (Dom.attribute_local order "v"));
  ]

let control_flow_tests =
  [
    t "throw and catch" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var got = ''; try { throw 'boom'; got = 'no'; } catch (e) { got = 'caught:' + e; }";
        check Alcotest.string "caught" "caught:boom" (eval_str b "got"));
    t "finally always runs" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var log = ''; try { log += 'a'; throw 1; } catch (e) { log += 'b'; } finally { log += 'c'; }
           try { log += 'd'; } finally { log += 'e'; }";
        check Alcotest.string "order" "abcde" (eval_str b "log"));
    t "uncaught throw escapes as Js_error-compatible exception" (fun () ->
        let b = fresh () in
        match J.run_script b b.B.top_window "throw 'up';" with
        | exception _ -> ()
        | () -> Alcotest.fail "expected an exception");
    t "host errors are catchable" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var got = ''; try { nosuchfunction(); } catch (e) { got = 'handled'; }";
        check Alcotest.string "handled" "handled" (eval_str b "got"));
    t "switch selects a case and falls through" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var log = ''; switch (2) { case 1: log += 'a'; case 2: log += 'b'; case 3: log += 'c'; break; default: log += 'd'; }";
        check Alcotest.string "fallthrough bc" "bc" (eval_str b "log"));
    t "switch default" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var log = ''; switch (9) { case 1: log += 'a'; break; default: log += 'dflt'; }";
        check Alcotest.string "default" "dflt" (eval_str b "log"));
    t "switch uses strict equality" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var log = ''; switch ('1') { case 1: log = 'num'; break; default: log = 'str'; }";
        check Alcotest.string "strict" "str" (eval_str b "log"));
    t "do-while runs at least once" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var n = 0; do { n++; } while (false);";
        check Alcotest.string "once" "1" (eval_str b "n"));
    t "do-while with break" (fun () ->
        let b = fresh () in
        J.run_script b b.B.top_window
          "var n = 0; do { n++; if (n >= 3) break; } while (true);";
        check Alcotest.string "three" "3" (eval_str b "n"));
  ]

let suite =
  language_tests @ statement_tests @ dom_tests @ coexistence_tests
  @ control_flow_tests
