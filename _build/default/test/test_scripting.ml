(* XQuery Scripting Extension: blocks, declare/set, while, exit with,
   sequential functions, statement-boundary update application (§3.3),
   plus full text and the optimizer. *)

open Xquery
module I = Xdm_item

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let run_str src = I.to_display_string (Engine.eval_string src)
let eq name expected src = t name (fun () -> check Alcotest.string src expected (run_str src))

let scripting_tests =
  [
    eq "block returns last statement" "3" "{ 1; 2; 3 }";
    eq "declare and read" "5" "{ declare variable $x := 5; $x }";
    eq "set assigns" "42" "{ declare variable $x := 1; set $x := 42; $x }";
    eq "assignment sees previous value" "6"
      "{ declare variable $x := 2; set $x := $x * 3; $x }";
    eq "uninitialised variable is empty" "0"
      "{ declare variable $x; count($x) }";
    eq "while loop" "10"
      "{ declare variable $i := 0; declare variable $acc := 0; \
         while ($i lt 4) { set $i := $i + 1; set $acc := $acc + $i }; $acc }";
    eq "while with false condition never runs" "0"
      "{ declare variable $n := 0; while (false()) { set $n := 99 }; $n }";
    eq "nested while" "9"
      "{ declare variable $c := 0; declare variable $i := 0; \
         while ($i lt 3) { set $i := $i + 1; declare variable $j := 0; \
           while ($j lt 3) { set $j := $j + 1; set $c := $c + 1 } }; $c }";
    eq "statement sees earlier update (paper §3.3)" "1"
      "{ declare variable $lib := <books/>; \
         insert node <book title='starwars'/> into $lib; \
         count($lib/book[@title='starwars']) }";
    eq "paper block example shape" "6 movies"
      "{ declare variable $lib := <books/>; \
         declare variable $b := <book title='starwars'/>; \
         insert node $b into $lib; \
         set $b := $lib//book[@title='starwars']; \
         insert node <comment>6 movies</comment> into $b; \
         string($lib/book/comment) }";
    eq "sequential function" "3"
      "declare sequential function local:f() { declare variable $x := 1; set $x := $x + 2; $x }; \
       local:f()";
    eq "exit with returns early" "early"
      "declare sequential function local:f() { exit with 'early'; 'late' }; local:f()";
    eq "exit with applies pending updates" "done 1"
      "declare sequential function local:f($d) { insert node <x/> into $d; exit with 'done'; 'no' }; \
       { declare variable $d := <r/>; declare variable $r := local:f($d); \
         concat($r, ' ', count($d/x)) }";
    eq "block scoping shadows" "inner outer"
      "{ declare variable $x := 'outer'; \
         declare variable $r := { declare variable $x := 'inner'; $x }; \
         concat($r, ' ', $x) }";
    eq "block keyword form" "2" "block { 1; 2 }";
    eq "do-prefixed update statement (section 4.4 style)" "new"
      "{ declare variable $d := <v>old</v>; do replace value of node $d with 'new'; string($d) }";
    eq "break leaves the loop (paper lists break, section 3.3)" "3"
      "{ declare variable $i := 0; \
         while (true()) { set $i := $i + 1; if ($i ge 3) then break else () }; $i }";
    eq "continue skips the rest of the body" "4"
      "{ declare variable $i := 0; declare variable $evens := 0; \
         while ($i lt 8) { set $i := $i + 1; \
           if ($i mod 2 = 1) then continue else (); \
           set $evens := $evens + 1 }; $evens }";
    eq "break only exits the inner loop" "6"
      "{ declare variable $total := 0; declare variable $i := 0; \
         while ($i lt 3) { set $i := $i + 1; declare variable $j := 0; \
           while (true()) { set $j := $j + 1; \
             if ($j ge 2) then break else (); \
             () }; \
           set $total := $total + $j }; $total }";
    t "break outside a loop is an error" (fun () ->
        match Engine.eval_string "{ break }" with
        | exception Xq_error.Error e ->
            check Alcotest.string "code" "XSST0010" e.Xq_error.code
        | _ -> Alcotest.fail "expected error");
    eq "while over dom mutation" "5"
      "{ declare variable $d := <r/>; declare variable $i := 0; \
         while (count($d/*) lt 5) { insert node <c/> into $d; set $i := $i + 1 }; $i }";
  ]

let fulltext_tests =
  [
    eq "ftcontains basic" "true" "'XQuery in the browser' ftcontains 'browser'";
    eq "ftcontains is token-based" "false" "'browsers' ftcontains 'browse'";
    eq "ftcontains case-insensitive" "true" "'The Dog' ftcontains 'dog'";
    eq "ftcontains phrase" "true" "'the quick brown fox' ftcontains 'quick brown'";
    eq "ftcontains phrase order matters" "false" "'the quick brown fox' ftcontains 'brown quick'";
    eq "ftand" "true" "'cat and dog' ftcontains 'cat' ftand 'dog'";
    eq "ftand false" "false" "'cat only' ftcontains 'cat' ftand 'dog'";
    eq "ftor" "true" "'cat only' ftcontains 'cat' ftor 'dog'";
    eq "ftnot" "true" "'cat only' ftcontains ftnot 'dog'";
    eq "with stemming" "true" "'the dogs are barking' ftcontains ('dog' with stemming)";
    eq "stemming both sides" "true" "'stemming' ftcontains ('stems' with stemming)";
    eq "paper books example" "Y"
      "let $books := <books>\
         <book><title>a cat and a dog</title><author>Y</author></book>\
         <book><title>only cats here</title><author>N</author></book>\
       </books> \
       for $b in $books/book \
       where $b/title ftcontains ('dog' with stemming) ftand 'cat' \
       return string($b/author)";
    eq "paper payment example shape" "computer"
      "let $orders := <paymentorder><paymentorders><name>computer</name><price>999</price></paymentorders></paymentorder> \
       for $x at $i in $orders/paymentorders \
       let $price := $x/price \
       where $x/name ftcontains 'computer' \
       return string($x/name)";
    eq "ftcontains over node sequence" "true"
      "<r><p>alpha</p><p>beta</p></r>/p ftcontains 'beta'";
  ]

let optimizer_tests =
  let opt src = Optimizer.optimize_expr (Parser.parse_expression (Engine.default_static ()) src) in
  [
    t "constant folding" (fun () ->
        match opt "1 + 2 * 3" with
        | Ast.E_literal (Xdm_atomic.Integer 7) -> ()
        | _ -> Alcotest.fail "expected folded literal 7");
    t "if with constant condition" (fun () ->
        match opt "if (true()) then 'a' else 'b'" with
        | Ast.E_literal (Xdm_atomic.String "a") -> ()
        | _ -> Alcotest.fail "expected folded branch");
    t "count(e) = 0 becomes empty(e)" (fun () ->
        match opt "count($x) = 0" with
        | Ast.E_call ({ Xmlb.Qname.local = "empty"; _ }, _) -> ()
        | _ -> Alcotest.fail "expected fn:empty rewrite");
    t "count(e) > 0 becomes exists(e)" (fun () ->
        match opt "count($x) > 0" with
        | Ast.E_call ({ Xmlb.Qname.local = "exists"; _ }, _) -> ()
        | _ -> Alcotest.fail "expected fn:exists rewrite");
    t "// rewrite to descendant" (fun () ->
        match opt "$d//a" with
        | Ast.E_path (Ast.E_var _, Ast.E_step (Ast.Descendant, Ast.Name_test _, [])) -> ()
        | _ -> Alcotest.fail "expected descendant step");
    t "// rewrite blocked by positional predicate" (fun () ->
        match opt "$d//a[1]" with
        | Ast.E_path (Ast.E_path (_, Ast.E_step (Ast.Descendant_or_self, _, _)), _) -> ()
        | _ -> Alcotest.fail "expected original shape");
    t "true() predicate dropped" (fun () ->
        match opt "$d/a[true()]" with
        | Ast.E_path (_, Ast.E_step (Ast.Child, _, [])) -> ()
        | _ -> Alcotest.fail "expected predicate gone");
    t "updating node survives; pure subtrees still rewritten" (fun () ->
        match opt "insert node <a/> into $d/x[true()]" with
        | Ast.E_insert (_, _, Ast.E_path (_, Ast.E_step (_, _, []))) -> ()
        | _ -> Alcotest.fail "expected insert with simplified target");
    t "optimized and unoptimized agree" (fun () ->
        let src =
          "let $d := <r><a><b>1</b></a><a><b>2</b></a></r> \
           return string-join(for $b in $d//b where count($b) > 0 order by $b return string($b), ',')"
        in
        let a = I.to_display_string (Engine.eval_string ~optimize:false src) in
        let b = I.to_display_string (Engine.eval_string ~optimize:true src) in
        check Alcotest.string "same result" a b);
    t "rewrite counter advances" (fun () ->
        let before = Optimizer.rewrite_count () in
        ignore (opt "1 + 1");
        check Alcotest.bool "counted" true (Optimizer.rewrite_count () > before));
  ]

let suite = scripting_tests @ fulltext_tests @ optimizer_tests
