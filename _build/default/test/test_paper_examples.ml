(* Every code listing from the paper, run verbatim (or as close as the
   simulated substrate allows; divergences are noted inline). This is
   the core of the reproduction story: the paper's own examples are the
   spec. *)

open Xquery
module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let () = Minijs.Js_interp.install ()

let run_xq b src = Xqib.Page.run_xquery b b.B.top_window src

(* ---------------- §2.2: embedded XPath in JavaScript ---------------- *)

let s22 =
  [
    t "§2.2 heart insertion (verbatim JS)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/javascript">
var allDivs, newElement;
allDivs = document.evaluate(
  "//div[contains(., 'love')]",
  document, null, XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null);
if (allDivs.snapshotLength > 0) {
  newElement = document.createElement('img');
  newElement.src = 'http://heart.example/heart.gif';
  document.body.insertBefore(newElement,
    document.body.firstChild);
}
</script></head><body><div>love</div></body></html>|};
        check Alcotest.int "heart inserted" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "img")));
  ]

(* ---------------- §3.1: FLWOR and full-text ---------------- *)

let s31 =
  [
    t "§3.1 payment-order FLWOR (verbatim)" (fun () ->
        (* doc("bill.xml") resolves against a host store here *)
        let store = Doc_store.create () in
        Doc_store.put_xml store ~name:"bill.xml"
          "<paymentorder><paymentorders><name>computer</name><price>999</price></paymentorders>\
           <paymentorders><name>desk</name><price>200</price></paymentorders></paymentorder>";
        let host =
          {
            Dynamic_context.default_host with
            Dynamic_context.doc =
              (fun uri ->
                match Doc_store.get store uri with
                | Some d -> d
                | None -> Xq_error.raise_error "FODC0002" "no %s" uri);
          }
        in
        let r =
          Engine.eval_string ~host
            {|for $x at $i in
                doc("bill.xml")/paymentorder/paymentorders
              let $price := $x/price
              where $x/name ftcontains "computer"
              return <li>
                {$x/name}
                <eur>{data($price)}</eur>
              </li>|}
        in
        check Alcotest.string "li built"
          "<li><name>computer</name><eur>999</eur></li>"
          (String.concat "" (List.map Xdm_item.item_string [] )
          |> fun _ ->
          String.concat ""
            (List.map
               (function
                 | Xdm_item.Node n -> Dom.serialize n
                 | Xdm_item.Atomic a -> Xdm_atomic.to_string a)
               r)));
    t "§3.1 books full-text (verbatim)" (fun () ->
        let store = Doc_store.create () in
        Doc_store.put_xml store ~name:"books"
          "<books><book><title>the dogs and a cat</title><author>Y</author></book>\
           <book><title>only cats</title><author>N</author></book></books>";
        let host =
          {
            Dynamic_context.default_host with
            Dynamic_context.doc =
              (fun uri ->
                match Doc_store.get store uri with
                | Some d -> d
                | None -> Xq_error.raise_error "FODC0002" "no %s" uri);
          }
        in
        let r =
          Engine.eval_string ~host ~context_item:(Xdm_item.Node (Option.get (Doc_store.get store "books")))
            {|for $b in /books/book
              where $b/title ftcontains
                ("dog" with stemming) ftand "cat"
              return $b/author|}
        in
        check Alcotest.string "author" "<author>Y</author>"
          (String.concat ""
             (List.map
                (function
                  | Xdm_item.Node n -> Dom.serialize n
                  | Xdm_item.Atomic a -> Xdm_atomic.to_string a)
                r)));
  ]

(* ---------------- §3.2: update facility ---------------- *)

let s32 =
  [
    t "§3.2 library insert + price replace (verbatim pair)" (fun () ->
        let store = Doc_store.create () in
        Doc_store.put_xml store ~name:"library.xml" "<books/>";
        Doc_store.put_xml store ~name:"bill.xml"
          "<bill><items id=\"computer\"><price>999</price></items></bill>";
        let host =
          {
            Dynamic_context.default_host with
            Dynamic_context.doc =
              (fun uri ->
                match Doc_store.get store uri with
                | Some d -> d
                | None -> Xq_error.raise_error "FODC0002" "no %s" uri);
          }
        in
        ignore
          (Engine.eval_string ~host
             {|insert node <book title="Starwars"/>
               into doc("library.xml")/books,
               replace value of node
               doc("bill.xml")/bill/items[@id="computer"]/price
               with 1500|});
        check Alcotest.string "book inserted"
          "<books><book title=\"Starwars\"/></books>"
          (Dom.serialize (Option.get (Doc_store.get store "library.xml")));
        check Alcotest.string "price replaced"
          "<bill><items id=\"computer\"><price>1500</price></items></bill>"
          (Dom.serialize (Option.get (Doc_store.get store "bill.xml"))));
  ]

(* ---------------- §3.3: scripting block ---------------- *)

let s33 =
  [
    t "§3.3 starwars block (near-verbatim)" (fun () ->
        (* divergence: the paper's bare //book needs a context document;
           we bind lib.xml as the context so the absolute paths work *)
        let store = Doc_store.create () in
        Doc_store.put_xml store ~name:"lib.xml" "<books/>";
        Doc_store.put_xml store ~name:"src.xml"
          "<src><book title=\"starwars\"><title>starwars</title></book></src>";
        let host =
          {
            Dynamic_context.default_host with
            Dynamic_context.doc =
              (fun uri ->
                match Doc_store.get store uri with
                | Some d -> d
                | None -> Xq_error.raise_error "FODC0002" "no %s" uri);
          }
        in
        ignore
          (Engine.eval_string ~host
             ~context_item:(Xdm_item.Node (Option.get (Doc_store.get store "src.xml")))
             {|{ declare variable $b;
                 set $b := //book[title="starwars"];
                 insert node $b into doc("lib.xml")/books;
                 set $b := doc("lib.xml")//book[title="starwars"];
                 insert node <comment>6 movies</comment> into $b; }|});
        check Alcotest.string "comment inside the inserted copy"
          "6 movies"
          (Dom.string_value
             (List.hd
                (Dom.get_elements_by_local_name
                   (Option.get (Doc_store.get store "lib.xml"))
                   "comment"))));
  ]

(* ---------------- §3.4: web services ---------------- *)

let s34 =
  [
    t "§3.4 module + import + textbox update (verbatim shapes)" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let _svc =
          Web_service.publish http
            ~source:
              {|module namespace ex="www.example.ch" port:2001;
                declare option fn:webservice "true";
                declare function ex:mul($a,$b) {$a * $b};|}
        in
        let b = B.create ~clock ~http () in
        Xqib.Page.load b
          {|<html><body><input name="textbox" value="0"/></body></html>|};
        ignore
          (run_xq b
             {|import module namespace ab="www.example.ch"
               at "http://localhost:2001/wsdl";
               replace value of node
               //input[@name="textbox"]/@value
               with ab:mul(2,5)|});
        let input = List.hd (Dom.get_elements_by_local_name (B.document b) "input") in
        check (Alcotest.option Alcotest.string) "10" (Some "10")
          (Dom.attribute_local input "value"));
  ]

(* ---------------- §4.1: hello world ---------------- *)

let s41 =
  [
    t "§4.1 Hello World (verbatim)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head>
<title>Hello World Page</title>
<script type="text/xquery">
browser:alert("Hello, World!")
</script>
</head><body/></html>|};
        check (Alcotest.list Alcotest.string) "alert" [ "Hello, World!" ] (B.alerts b));
  ]

(* ---------------- §4.2: window examples ---------------- *)

let s42 =
  [
    t "§4.2.1 browser:top()//window[@name='leftframe'] (verbatim)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        Xqib.Windows.add_frame ~parent:b.B.top_window
          (Xqib.Windows.create ~name:"leftframe" ~href:"http://localhost/l" ());
        check Alcotest.string "1" "1"
          (Xdm_item.to_display_string
             (run_xq b {|count(browser:top()//window[@name="leftframe"])|})));
    t "§4.2.1 replace status with Welcome (verbatim)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        ignore (run_xq b {|replace value of node browser:self()/status
                           with "Welcome"|});
        check Alcotest.string "status" "Welcome" b.B.top_window.Xqib.Windows.status);
    t "§4.2.1 alert lastModified (verbatim shape)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        ignore
          (run_xq b
             {|{ declare variable $win := browser:self();
                 browser:alert($win/lastModified) }|});
        check Alcotest.int "one alert" 1 (List.length (B.alerts b)));
    t "§4.2.2 navigator and screen accessors (verbatim)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html><body/></html>";
        check Alcotest.string "appName" "Microsoft Internet Explorer"
          (Xdm_item.to_display_string (run_xq b "string(browser:navigator()/appName)"));
        check Alcotest.string "height" "1024"
          (Xdm_item.to_display_string (run_xq b "string(browser:screen()/height)")));
    t "§4.2.4 browser-specific code via ftcontains (verbatim)" (fun () ->
        let b = B.create ~navigator:Xqib.Bom.internet_explorer () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
if (browser:navigator()/appName
    ftcontains "Mozilla") then
  browser:alert("You are running Mozilla")
else if (browser:navigator()/appName
    ftcontains "Internet Explorer") then
  browser:alert("You are running IE")
else ()
</script></head><body/></html>|};
        check (Alcotest.list Alcotest.string) "IE" [ "You are running IE" ] (B.alerts b));
    t "§4.2.3 //div and children-window images (verbatim shapes)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><body><div>a</div><div>b</div></body></html>|};
        let child = Xqib.Windows.create ~name:"c1" ~href:"http://localhost/c" () in
        child.Xqib.Windows.document <-
          Dom.of_string "<html><body><img src='1.gif'/><img src='2.gif'/></body></html>";
        let child2 = Xqib.Windows.create ~name:"c2" ~href:"http://localhost/c2" () in
        Xqib.Windows.add_frame ~parent:b.B.top_window child;
        Xqib.Windows.add_frame ~parent:b.B.top_window child2;
        check Alcotest.string "divs" "2"
          (Xdm_item.to_display_string (run_xq b "count(//div)"));
        (* the paper indexes frames/*[2]; our frames list c1 first, so
           use [1] to address the image-bearing child *)
        check Alcotest.string "imgs in child" "2"
          (Xdm_item.to_display_string
             (run_xq b
                "count(browser:document(browser:self()/frames/window[1])//img)")));
  ]

(* ---------------- §4.3: events ---------------- *)

let s43 =
  [
    t "§4.3.1 myEventListener with exit with (verbatim)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
declare sequential function local:myEventListener
  ($evt, $obj) as xs:boolean {
  declare variable $message := <message>Event occured:
    {$evt/type}
    at {name($obj)}
  </message>;
  exit with browser:alert(string($message));
};
on event "onclick" at //input[@id="button"]
attach listener local:myEventListener
</script></head><body><input id="button"/></body></html>|};
        (* divergence: the paper writes `= <message>` (no :=) and
           alert(data(...)); we use := and string() — same semantics *)
        let input = Option.get (Dom.get_element_by_id (B.document b) "button") in
        B.click b input;
        match B.alerts b with
        | [ msg ] ->
            check Alcotest.bool "mentions onclick" true
              (Str.string_match (Str.regexp ".*onclick.*")
                 (String.map (function '\n' -> ' ' | c -> c) msg) 0)
        | l -> Alcotest.failf "expected one alert, got %d" (List.length l));
    t "§4.3.1 detach and trigger (verbatim)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
declare updating function local:l($evt, $obj) {
  insert node <hit/> into //body
};
on event "onclick" at //input[@id="myButton"]
attach listener local:l
</script></head><body><input id="myButton"/></body></html>|};
        ignore (run_xq b {|trigger event "onclick" at //input[@id="myButton"]|});
        ignore
          (run_xq b
             {|on event "onclick" at //input[@id="myButton"]
               detach listener local:l|});
        ignore (run_xq b {|trigger event "onclick" at //input[@id="myButton"]|});
        check Alcotest.int "only the first trigger hit" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "hit")));
    t "§4.3.2 left/right button dispatch (verbatim)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
declare updating function local:listener($evt, $obj) {
  if($evt/button=1) then insert node <left/> into //body
  else insert node <other/> into //body
};
on event "onclick" at html//input[@name="submit"]
attach listener local:listener
</script></head><body><input name="submit"/></body></html>|};
        let input = List.hd (Dom.get_elements_by_local_name (B.document b) "input") in
        B.dispatch b ~detail:[ ("button", "1") ] ~target:input "onclick";
        B.dispatch b ~detail:[ ("button", "2") ] ~target:input "onclick";
        check Alcotest.int "left" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "left"));
        check Alcotest.int "other" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "other")));
  ]

(* ---------------- §4.5: CSS ---------------- *)

let s45 =
  [
    t "§4.5 set style / get style (verbatim)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><table id="thistable"/></body></html>|};
        ignore
          (run_xq b {|set style "border-margin"
                      of //table[@id="thistable"] to "2px"|});
        check Alcotest.string "get back" "2px"
          (Xdm_item.to_display_string
             (run_xq b
                {|{ declare variable $mystring as xs:string;
                    set $mystring := get style "border-margin"
                    of //table[@id="thistable"];
                    $mystring }|})));
  ]

(* ---------------- §6.3: multiplication demo claim ---------------- *)

let s63 =
  [
    t "§6.3 XQuery-only page runs both tiers (shape)" (fun () ->
        (* the full flow is covered by test_appserver migration tests;
           here: assert the exact page source from Scenarios parses *)
        let static = Engine.default_static () in
        let prog = Parser.parse_program static Scenarios.shop_xquery_page in
        check Alcotest.bool "has updating function" true
          (List.exists
             (function
               | Ast.P_function { Ast.kind = Ast.F_updating; _ } -> true
               | _ -> false)
             prog.Ast.prolog));
  ]

let suite = s22 @ s31 @ s32 @ s33 @ s34 @ s41 @ s42 @ s43 @ s45 @ s63
