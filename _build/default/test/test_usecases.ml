(* Realistic workload coverage: the W3C "XML Query Use Cases" XMP
   queries (the classic bibliography/reviews documents), adapted to run
   against constructed documents. These exercise FLWOR, joins, grouping
   by distinct-values, conditionals, constructors and aggregation the
   way real applications combine them. *)

open Xquery
module I = Xdm_item

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let bib =
  {|<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first><affiliation>CITI</affiliation></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>|}

let reviews =
  {|<reviews>
  <entry>
    <title>Data on the Web</title>
    <price>34.95</price>
    <review>A very good discussion of semi-structured database systems and XML.</review>
  </entry>
  <entry>
    <title>Advanced Programming in the Unix environment</title>
    <price>65.95</price>
    <review>A clear and detailed discussion of UNIX programming.</review>
  </entry>
  <entry>
    <title>TCP/IP Illustrated</title>
    <price>65.95</price>
    <review>One of the best books on TCP/IP.</review>
  </entry>
</reviews>|}

(* bind $bib and $reviews, then run *)
let run query =
  let src =
    Printf.sprintf "let $bib := %s let $reviews := %s return (%s)" bib reviews query
  in
  I.to_display_string (Engine.eval_string src)

let eq name expected query =
  t name (fun () -> check Alcotest.string name expected (run query))

let suite =
  [
    (* Q1: books published by Addison-Wesley after 1991 *)
    eq "XMP Q1: AW books after 1991"
      "<bib><book year=\"1994\"><title>TCP/IP Illustrated</title></book><book year=\"1992\"><title>Advanced Programming in the Unix environment</title></book></bib>"
      {|<bib>{
         for $b in $bib/book
         where $b/publisher = "Addison-Wesley" and $b/@year > 1991
         return <book year="{$b/@year}">{$b/title}</book>
       }</bib>|};
    (* Q2: flat title-author pairs *)
    eq "XMP Q2: title-author pairs count" "5"
      {|count(<results>{
         for $b in $bib/book, $t in $b/title, $a in $b/author
         return <result>{$t}{$a}</result>
       }</results>/result)|};
    (* Q3: titles with all authors *)
    eq "XMP Q3: titles with authors" "4"
      {|count(<results>{
         for $b in $bib/book
         return <result>{$b/title}{$b/author}</result>
       }</results>/result)|};
    (* Q4: books per author (group by distinct author last names) *)
    eq "XMP Q4: Stevens wrote two books" "2"
      {|let $a := "Stevens"
        return count(for $b in $bib/book where $b/author/last = $a return $b)|};
    eq "XMP Q4: distinct author groups" "4"
      {|count(
         for $last in distinct-values($bib/book/author/last)
         return <author name="{$last}"/>
       )|};
    (* Q5: join with reviews on title *)
    eq "XMP Q5: books with review prices" "3"
      {|count(<books-with-prices>{
         for $b in $bib/book, $a in $reviews/entry
         where $b/title = $a/title
         return <book-with-prices>{$b/title}
           <price-review>{data($a/price)}</price-review>
           <price>{data($b/price)}</price>
         </book-with-prices>
       }</books-with-prices>/book-with-prices)|};
    (* Q6: books with more than one author *)
    eq "XMP Q6: multi-author books" "Data on the Web"
      {|string-join(
         for $b in $bib/book
         where count($b/author) > 1
         return string($b/title), ", ")|};
    (* Q7: AW books sorted by title *)
    eq "XMP Q7: sorted AW titles"
      "Advanced Programming in the Unix environment|TCP/IP Illustrated"
      {|string-join(
         for $b in $bib/book
         where $b/publisher = "Addison-Wesley"
         order by string($b/title)
         return string($b/title), "|")|};
    (* Q8: find books mentioning a word in the review (join + contains) *)
    eq "XMP Q8: reviews mentioning TCP/IP" "TCP/IP Illustrated"
      {|string-join(
         for $e in $reviews/entry
         where contains(string($e/review), "TCP/IP")
         return string($e/title), ", ")|};
    (* Q9: titles of books where review price is lower than book price *)
    eq "XMP Q9: discounted in reviews" "Data on the Web"
      {|string-join(
         for $b in $bib/book, $e in $reviews/entry
         where $b/title = $e/title and number($e/price) < number($b/price)
         return string($b/title), ", ")|};
    (* Q10: prices per title (min across sources) *)
    eq "XMP Q10: minimum price of Data on the Web" "34.95"
      {|string(min((
          for $p in ($bib/book[title='Data on the Web']/price,
                     $reviews/entry[title='Data on the Web']/price)
          return number($p))))|};
    (* Q11: books with or without editors: element presence tests *)
    eq "XMP Q11: books with editor affiliations" "CITI"
      {|string-join(
         for $b in $bib/book[editor]
         return string($b/editor/affiliation), ", ")|};
    (* Q12: pairs of books with the same authors (self-join) *)
    eq "XMP Q12: same-author pairs" "1"
      {|count(
         for $book1 in $bib/book, $book2 in $bib/book
         where $book1/author/last = $book2/author/last
           and $book1/author/first = $book2/author/first
           and ($book1/title << $book2/title or $book1/title >> $book2/title)
           and string($book1/title) < string($book2/title)
         return <pair>{$book1/title}{$book2/title}</pair>)|};
    (* aggregation sanity over the same data *)
    eq "aggregate: total book price" "301.8"
      {|string(sum(for $p in $bib/book/price return number($p)))|};
    eq "aggregate: average review price" "55.62"
      {|string(round-half-to-even(avg(for $p in $reviews/entry/price return number($p)), 2))|};
    eq "conditional inside constructor" "affordable"
      {|string(<v>{if (number($bib/book[3]/price) < 50) then "affordable" else "pricey"}</v>)|};
    (* the classic FLWOR-in-attribute pattern *)
    eq "computed attribute from aggregation" "4"
      {|string(<bib count="{count($bib/book)}"/>/@count)|};
  ]
