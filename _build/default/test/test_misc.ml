(* Remaining coverage: style utilities, the HOF fallback API (§5.1),
   serialization functions, parser diagnostics, JSP page chaining, and
   assorted corner cases. *)

open Xquery
module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let () = Minijs.Js_interp.install ()

let run_xq b src = Xqib.Page.run_xquery b b.B.top_window src
let run_str b src = Xdm_item.to_display_string (run_xq b src)
let eval_str src = Xdm_item.to_display_string (Engine.eval_string src)

let style_tests =
  [
    t "parse a style string" (fun () ->
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "props"
          [ ("color", "red"); ("margin", "2px") ]
          (Style_util.parse "color: red; margin: 2px"));
    t "parse tolerates noise" (fun () ->
        check Alcotest.int "skips empties" 1
          (List.length (Style_util.parse ";; color: red ;")));
    t "get is case-insensitive on the property" (fun () ->
        check (Alcotest.option Alcotest.string) "found" (Some "red")
          (Style_util.get "Color: red" "color"));
    t "set replaces preserving order" (fun () ->
        check Alcotest.string "replaced" "a: 1; b: 9"
          (Style_util.set "a: 1; b: 2" "b" "9"));
    t "set appends when missing" (fun () ->
        check Alcotest.string "appended" "a: 1; c: 3" (Style_util.set "a: 1" "c" "3"));
    t "node helpers work on elements without style" (fun () ->
        let el = Dom.create_element (Xmlb.Qname.make "d") in
        check (Alcotest.option Alcotest.string) "none" None
          (Style_util.get_on_node el "color");
        Style_util.set_on_node el "color" "blue";
        check (Alcotest.option Alcotest.string) "set" (Some "blue")
          (Style_util.get_on_node el "color"));
  ]

let hof_tests =
  [
    t "browser:addEventListener registers like the syntax (§5.1)" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:l($evt, $obj) {
              insert node <hit/> into //body
            };
            browser:addEventListener(//button, "onclick", "local:l")
            </script></head><body><button id="b"/></body></html>|};
        B.click b (Option.get (Dom.get_element_by_id (B.document b) "b"));
        check Alcotest.int "fired" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "hit")));
    t "browser:removeEventListener detaches" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:l($evt, $obj) {
              insert node <hit/> into //body
            };
            browser:addEventListener(//button, "onclick", "local:l")
            </script></head><body><button id="b"/></body></html>|};
        ignore (run_xq b {|browser:removeEventListener(//button, "onclick", "local:l")|});
        B.click b (Option.get (Dom.get_element_by_id (B.document b) "b"));
        check Alcotest.int "no hits" 0
          (List.length (Dom.get_elements_by_local_name (B.document b) "hit")));
    t "browser:dispatchEvent triggers like the syntax" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:l($evt, $obj) {
              insert node <hit/> into //body
            };
            on event "ping" at //button attach listener local:l
            </script></head><body><button id="b"/></body></html>|};
        ignore (run_xq b {|browser:dispatchEvent(//button, "ping")|});
        check Alcotest.int "fired" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "hit")));
    t "browser:setStyle/getStyle mirror the grammar" (fun () ->
        let b = B.create () in
        Xqib.Page.load b {|<html><body><div id="d"/></body></html>|};
        ignore (run_xq b {|browser:setStyle(//div, "color", "green")|});
        check Alcotest.string "read back" "green"
          (run_str b {|browser:getStyle(//div, "color")|}));
  ]

let serialize_tests =
  [
    t "fn:serialize of a node" (fun () ->
        check Alcotest.string "xml" "<a x=\"1\"><b/></a>"
          (eval_str "serialize(<a x='1'><b/></a>)"));
    t "fn:serialize of atomics" (fun () ->
        check Alcotest.string "concat" "12" (eval_str "serialize((1, 2))"));
    t "fn:parse-xml round trips" (fun () ->
        check Alcotest.string "count" "2"
          (eval_str "count(parse-xml('<r><a/><b/></r>')/r/*)"));
    t "fn:parse-xml rejects garbage" (fun () ->
        match Engine.eval_string "parse-xml('<oops')" with
        | exception Xq_error.Error e ->
            check Alcotest.string "code" "FODC0006" e.Xq_error.code
        | _ -> Alcotest.fail "expected error");
    t "serialize/parse-xml are inverses on constructed trees" (fun () ->
        check Alcotest.string "same" "true"
          (eval_str
             "let $t := <doc><x y='2'>text</x></doc> \
              return deep-equal($t, parse-xml(serialize($t))/doc)"));
  ]

let diagnostics_tests =
  [
    t "syntax errors carry line and column" (fun () ->
        match Engine.eval_string "1 +\n  **" with
        | exception Xq_error.Error e ->
            check Alcotest.string "code" "XPST0003" e.Xq_error.code;
            check Alcotest.bool "mentions line 2" true
              (let re = Str.regexp ".*line 2.*" in
               Str.string_match re e.Xq_error.message 0)
        | _ -> Alcotest.fail "expected syntax error");
    t "unknown function error names it with arity" (fun () ->
        match Engine.eval_string "fn:frobnicate(1, 2)" with
        | exception Xq_error.Error e ->
            check Alcotest.bool "mentions name and arity" true
              (let re = Str.regexp ".*frobnicate#2.*" in
               Str.string_match re e.Xq_error.message 0)
        | _ -> Alcotest.fail "expected error");
    t "undefined variable error names it" (fun () ->
        match Engine.eval_string "$missing" with
        | exception Xq_error.Error e ->
            check Alcotest.bool "names it" true
              (let re = Str.regexp ".*\\$missing.*" in
               Str.string_match re e.Xq_error.message 0)
        | _ -> Alcotest.fail "expected error");
  ]

let jsp_chaining_tests =
  [
    t "several JSP pages share one host" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let j = Appserver.Jsp_sim.create () in
        Appserver.Jsp_sim.register_page j http ~host:"site" ~path:"/a" "page A";
        Appserver.Jsp_sim.register_page j http ~host:"site" ~path:"/b" "page B";
        check Alcotest.string "a" "page A" (Http_sim.fetch http "http://site/a").Http_sim.body;
        check Alcotest.string "b" "page B" (Http_sim.fetch http "http://site/b").Http_sim.body;
        check Alcotest.int "missing still 404" 404
          (Http_sim.fetch http "http://site/zzz").Http_sim.status);
  ]

let corner_tests =
  [
    t "deeply nested constructor evaluates" (fun () ->
        let depth = 200 in
        let src =
          String.concat ""
            (List.init depth (fun _ -> "<d>"))
          ^ "1"
          ^ String.concat "" (List.init depth (fun _ -> "</d>"))
        in
        check Alcotest.string "survives" "1"
          (eval_str (Printf.sprintf "string(%s)" src)));
    t "large sequence operations" (fun () ->
        check Alcotest.string "sum" "50005000" (eval_str "sum(1 to 10000)"));
    t "empty page body loads" (fun () ->
        let b = B.create () in
        Xqib.Page.load b "<html/>";
        check Alcotest.string "queryable" "1" (run_str b "count(/html)"));
    t "whitespace-only script is a no-op" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">   </script></head><body/></html>|};
        check Alcotest.int "no errors" 0 (List.length b.B.script_errors));
    t "xquery comments inside page scripts" (fun () ->
        let b = B.create () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            (: setup :) browser:alert("done") (: teardown :)
            </script></head><body/></html>|};
        check (Alcotest.list Alcotest.string) "ran" [ "done" ] (B.alerts b));
    t "attribute value templates with quotes" (fun () ->
        check Alcotest.string "av" "<a t=\"it's 2\"/>"
          (eval_str "<a t=\"it's {1 + 1}\"/>"));
    t "catalog lists the function library" (fun () ->
        check Alcotest.bool "over 100 entries" true
          (List.length (Functions.catalog ()) > 100));
  ]

let suite =
  style_tests @ hof_tests @ serialize_tests @ diagnostics_tests
  @ jsp_chaining_tests @ corner_tests
