(* Timing helpers built on Bechamel: every timed experiment goes
   through [ns_per_run], which runs the thunk under Bechamel's
   monotonic clock and returns the OLS estimate of nanoseconds per
   run. *)

open Bechamel
open Toolkit

let ns_per_run ?(quota = 0.5) f =
  let test = Test.make ~name:"b" (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock
      raw
  in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ ols ] -> (
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> est
      | _ -> Float.nan)
  | _ -> Float.nan

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let section id title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "==============================================================\n"
