bench/main.mli:
