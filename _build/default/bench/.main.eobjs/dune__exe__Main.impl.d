bench/main.ml: Appserver Bench_util Buffer Dom Http_sim List Minijs Option Printf Scenarios Sys Virtual_clock Xdm_item Xqib Xquery
