(* The §6.3 comparison, executed end to end on both stacks:

   1. the *status quo* stack — a JSP-style server page mixing HTML,
      JavaScript (with embedded XPath) and SQL;
   2. the *XQuery-only* stack — one language for database access,
      page generation and client-side behaviour.

   Both serve a product list; in both, clicking Buy adds the product to
   the shopping cart, client-side. The example prints the rendered
   pages, exercises a click on each, and reports the lines-of-code
   comparison the paper makes. *)

module B = Xqib.Browser
module AS = Appserver.App_server

let () = Minijs.Js_interp.install ()

let run_baseline () =
  print_endline "==================================================";
  print_endline "1. Baseline: JSP + SQL + JavaScript (+ XPath)";
  print_endline "==================================================";
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let jsp = Appserver.Jsp_sim.create ~db:(Scenarios.shop_db 3) () in
  Appserver.Jsp_sim.register_page jsp http ~host:"legacy.shop" ~path:"/cart"
    Scenarios.shop_jsp_template;
  let browser = B.create ~clock ~http () in
  Xqib.Page.browse browser "http://legacy.shop/cart";
  let doc = B.document browser in
  (match Dom.get_elements_by_local_name doc "input" with
  | input :: _ -> B.click browser input
  | [] -> prerr_endline "no inputs rendered!");
  let cart = Option.get (Dom.get_element_by_id doc "shoppingcart") in
  Printf.printf "cart after one click : %s\n" (Dom.serialize cart);
  Printf.printf "server renders       : %d\n" (Appserver.Jsp_sim.render_count jsp);
  Printf.printf "languages in the page: JSP scriptlets, SQL, JavaScript, XPath\n"

let run_xquery_only () =
  print_endline "\n==================================================";
  print_endline "2. XQuery-only (paper's proposal)";
  print_endline "==================================================";
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let server = AS.create http ~host:"xq.shop" in
  Doc_store.put_xml (AS.store server) ~name:"products.xml" (Scenarios.products_xml 3);
  AS.add_xquery_page server ~path:"/cart" Scenarios.shop_xquery_page;
  (* serve the client-side version via the §6.1 migration transform *)
  ignore (Appserver.Migration.migrate_server_page server ~path:"/cart" ~client_path:"/cart-client");
  let browser = B.create ~clock ~http () in
  Xqib.Page.browse browser "http://xq.shop/cart-client";
  B.run browser;
  let doc = B.document browser in
  (match Dom.get_elements_by_local_name doc "input" with
  | input :: _ -> B.click browser input
  | [] -> prerr_endline "no inputs rendered!");
  let cart = Option.get (Dom.get_element_by_id doc "shoppingcart") in
  Printf.printf "cart after one click : %s\n" (Dom.serialize cart);
  Printf.printf "server evaluations   : %d (everything ran in the browser)\n"
    (AS.evaluations server);
  Printf.printf "languages in the page: XQuery\n"

let () =
  run_baseline ();
  run_xquery_only ();
  print_endline "\n==================================================";
  print_endline "3. Lines of code (paper: XQuery needs far fewer)";
  print_endline "==================================================";
  let jsp = Scenarios.loc Scenarios.shop_jsp_template in
  let xq = Scenarios.loc Scenarios.shop_xquery_page in
  Printf.printf "JSP+SQL+JS shopping cart : %3d lines\n" jsp;
  Printf.printf "XQuery-only shopping cart: %3d lines\n" xq;
  Printf.printf "ratio                    : %.1fx\n" (float_of_int jsp /. float_of_int xq)
