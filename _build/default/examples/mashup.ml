(* The §6.2 Google-Maps/weather mash-up: JavaScript runs the map (its
   own service + DOM updates), XQuery handles the same search click to
   call weather and webcam REST services and integrate the results.
   Both languages listen to the SAME event and share the page DOM as
   their common database (Fig. 3). *)

module B = Xqib.Browser

let () = Minijs.Js_interp.install ()

let () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let page = Scenarios.setup_mashup http in
  let browser = B.create ~clock ~http () in
  Xqib.Page.load browser page;

  (* the user types a location and hits search *)
  let doc = B.document browser in
  let searchbox = Option.get (Dom.get_element_by_id doc "searchbox") in
  Dom.set_attribute searchbox (Xmlb.Qname.make "value") "zurich";
  let search = Option.get (Dom.get_element_by_id doc "search") in
  B.click browser search;
  B.run browser;

  print_endline "== page after searching for 'zurich' ==";
  print_endline (Dom.serialize ~indent:true doc);

  let map = Option.get (Dom.get_element_by_id doc "map") in
  Printf.printf "\nJavaScript updated the map     : location=%s\n"
    (Option.value ~default:"(none)" (Dom.attribute_local map "location"));
  let report =
    Xqib.Page.run_xquery browser browser.B.top_window
      "string(//div[@class='report']/p)"
  in
  Printf.printf "XQuery integrated the weather  : %s\n"
    (Xdm_item.to_display_string report);
  let cams =
    Xqib.Page.run_xquery browser browser.B.top_window
      "count(//div[@class='report']/img)"
  in
  Printf.printf "XQuery integrated webcams      : %s\n" (Xdm_item.to_display_string cams);
  Printf.printf "weather-service requests       : %d\n"
    (Http_sim.request_count http ~host:"weather-eu.example");
  Printf.printf "webcam-service requests        : %d\n"
    (Http_sim.request_count http ~host:"webcams.example");
  Printf.printf "virtual time elapsed           : %.3fs\n" (Virtual_clock.now clock)
