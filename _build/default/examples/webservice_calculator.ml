(* §3.4 end-to-end: an XQuery module published as a Web service
   (`module namespace ... port:2001`), imported by a page over its
   /wsdl location, called synchronously and asynchronously (`behind`).
   The paper's ab:mul(2,5) example, grown into a small calculator. *)

module B = Xqib.Browser

let service_module =
  {|module namespace calc = "www.example.ch/calc" port:2001;
declare option fn:webservice "true";
declare function calc:mul($a, $b) { $a * $b };
declare function calc:add($a, $b) { $a + $b };
declare function calc:fact($n) {
  if ($n le 1) then 1 else $n * calc:fact($n - 1)
};|}

let page =
  {|<html><head>
<script type="text/xquery">
import module namespace calc = "www.example.ch/calc"
  at "http://localhost:2001/wsdl";

declare updating function local:onFact($readyState, $result) {
  if ($readyState = 4)
  then replace value of node //span[@id="fact"] with string($result)
  else ()
};

declare updating function local:compute($evt, $obj) {
  (: synchronous calls for the cheap operations ... :)
  replace value of node //span[@id="mul"] with calc:mul(6, 7),
  replace value of node //span[@id="add"] with calc:add(19, 23),
  (: ... and `behind` for the expensive one: the UI is not blocked
     while the server computes (paper §4.4) :)
  on event "stateChanged" behind calc:fact(10)
  attach listener local:onFact
};
on event "onclick" at //button attach listener local:compute
</script>
</head><body>
<button id="go">Compute</button>
<p>6 x 7 = <span id="mul">?</span></p>
<p>19 + 23 is <span id="add">?</span></p>
<p>10! = <span id="fact">?</span></p>
</body></html>|}

let () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create ~latency:{ Http_sim.base = 0.02; per_kb = 0.001 } clock in
  let service = Web_service.publish http ~source:service_module in
  Printf.printf "published %s exposing: %s\n"
    (Web_service.service_uri service)
    (String.concat ", "
       (List.map
          (fun (n, a) -> Printf.sprintf "calc:%s/%d" n a)
          (Web_service.functions service)));

  let b = B.create ~clock ~http () in
  Xqib.Page.load b page;
  let doc = B.document b in
  B.click b (Option.get (Dom.get_element_by_id doc "go"));

  let span id = Dom.string_value (Option.get (Dom.get_element_by_id doc id)) in
  Printf.printf "\nafter the click (before the event loop runs):\n";
  Printf.printf "  mul=%s add=%s fact=%s   (sync done, behind in flight)\n"
    (span "mul") (span "add") (span "fact");

  B.run b;
  Printf.printf "after the event loop:\n";
  Printf.printf "  mul=%s add=%s fact=%s\n" (span "mul") (span "add") (span "fact");

  Printf.printf "\nremote calls executed by the service: %d\n"
    (Web_service.call_count service);
  Printf.printf "UI-blocked virtual time: %.3fs of %.3fs total\n" b.B.ui_blocked
    (Virtual_clock.now clock)
