(* The multiplication-table demo behind the paper's LoC claim ("77
   lines of JavaScript code or alternatively only 29 lines of XQuery
   code", §6.3). Both pages build the same n×n table; we run both,
   verify the DOMs agree cell-for-cell, and print the line counts. *)

module B = Xqib.Browser

let () = Minijs.Js_interp.install ()

let table_cells page =
  let browser = B.create () in
  Xqib.Page.load browser page;
  B.run browser;
  let doc = B.document browser in
  let cells = Dom.get_elements_by_local_name doc "td" in
  (browser, List.map Dom.string_value cells)

let () =
  let n = 9 in
  let js_page = Scenarios.mult_table_js_page n in
  let xq_page = Scenarios.mult_table_xquery_page n in

  let _, js_cells = table_cells js_page in
  let _, xq_cells = table_cells xq_page in

  Printf.printf "table size            : %dx%d\n" n n;
  Printf.printf "JavaScript cells      : %d\n" (List.length js_cells);
  Printf.printf "XQuery cells          : %d\n" (List.length xq_cells);
  Printf.printf "cell-for-cell equal   : %b\n" (js_cells = xq_cells);

  let js_loc = Scenarios.loc js_page in
  let xq_loc = Scenarios.loc xq_page in
  print_endline "\nlines of code (paper reports 77 vs 29 for its demo):";
  Printf.printf "  JavaScript page     : %d\n" js_loc;
  Printf.printf "  XQuery page         : %d\n" xq_loc;
  Printf.printf "  ratio               : %.1fx\n" (float_of_int js_loc /. float_of_int xq_loc);

  print_endline "\nXQuery page source:";
  print_endline (Scenarios.mult_table_xquery_page 3)
