(* The §4.4 AJAX suggest example: as the user types, the page calls a
   hint web service asynchronously through the `behind` binding. The
   call is non-blocking — the user keeps control of the UI — and the
   listener fires on each readyState signal, filling the hint box on
   completion. *)

module B = Xqib.Browser

let () =
  let clock = Virtual_clock.create () in
  let http =
    Http_sim.create ~latency:{ Http_sim.base = 0.08; per_kb = 0.001 } clock
  in
  let page = Scenarios.setup_suggest http in
  let browser = B.create ~clock ~http () in
  Xqib.Page.load browser page;

  let doc = B.document browser in
  let input = Option.get (Dom.get_element_by_id doc "text1") in
  let hint () = Dom.string_value (Option.get (Dom.get_element_by_id doc "txtHint")) in

  print_endline "typing 'al' ...";
  B.type_text browser input "al";
  Printf.printf "  immediately after keyup : hint=%S (call still in flight)\n" (hint ());
  Printf.printf "  UI blocked so far       : %.3fs of %.3fs virtual time\n"
    browser.B.ui_blocked (Virtual_clock.now clock);

  B.run browser;
  Printf.printf "  after the event loop    : hint=%S\n" (hint ());
  Printf.printf "  virtual time            : %.3fs (latency paid off the UI thread)\n"
    (Virtual_clock.now clock);

  print_endline "\ntyping 'ali' (narrows the prefix) ...";
  B.type_text browser input "i";
  B.run browser;
  Printf.printf "  hint                    : %S\n" (hint ());

  Printf.printf "\nhint-service requests     : %d\n"
    (Http_sim.request_count http ~host:"hints.example");
  Printf.printf "total UI-blocked time     : %.3fs (async: stays ~0)\n"
    browser.B.ui_blocked
