(* Quickstart: load a page with an embedded XQuery script, register an
   event listener with the paper's `on event ... attach listener`
   syntax, simulate clicks, and watch the DOM change (paper §4.1 +
   Fig. 1 processing model). *)

module B = Xqib.Browser

let page =
  {|<html>
  <head>
    <title>XQuery in the Browser — quickstart</title>
    <script type="text/xquery">
      browser:alert(concat("Hello from XQuery! Screen is ",
                           string(browser:screen()/width), "x",
                           string(browser:screen()/height)))
    </script>
    <script type="text/xquery">
      declare updating function local:clicked($evt, $obj) {
        insert node <li>clicked at button {string($obj/@id)} (event {string($evt/type)})</li>
        into //ul[@id="log"]
      };
      on event "onclick" at //button attach listener local:clicked
    </script>
  </head>
  <body>
    <button id="one">One</button>
    <button id="two">Two</button>
    <ul id="log"/>
  </body>
</html>|}

let () =
  let browser = B.create () in
  Xqib.Page.load browser page;

  print_endline "== alerts raised during page load ==";
  List.iter print_endline (B.alerts browser);

  let doc = B.document browser in
  let button id = Option.get (Dom.get_element_by_id doc id) in
  B.click browser (button "one");
  B.click browser (button "two");
  B.click browser (button "one");

  print_endline "\n== document after three clicks ==";
  print_endline (Dom.serialize ~indent:true doc);

  (* query the live page from the outside, like a dev console *)
  let result =
    Xqib.Page.run_xquery browser browser.B.top_window
      "for $li in //ul[@id='log']/li return string($li)"
  in
  print_endline "\n== log entries (XQuery view) ==";
  List.iter (fun item -> print_endline ("  " ^ Xdm_item.item_string item)) result;

  Printf.printf "\nevents dispatched: %d, DOM mutations observed: %d\n"
    browser.B.events_dispatched browser.B.render_count
