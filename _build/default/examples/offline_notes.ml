(* A Gears-style offline application (paper §2.4: "with the help of
   this feature, browser-based applications can run even if the client
   is not connected to the Internet"): a notes app that syncs a
   document from the server, keeps working against the client-side
   store while offline, and serves reads from the store. *)

module B = Xqib.Browser

let page =
  {|<html><head>
<script type="text/xqueryp">
declare sequential function local:sync() {
  (: online bootstrap: pull the notes document into the local store :)
  if (browser:online())
  then browser:storePut("notes", rest:get("http://notes.example/docs/notes.xml"))
  else browser:alert("offline: using the local store");
};
declare updating function local:add($evt, $obj) {
  (: works with or without connectivity: writes go to the store :)
  insert node <note>{string(//input[@id="txt"]/@value)}</note>
  into browser:storeGet("notes")/notes
};
declare updating function local:show($evt, $obj) {
  replace value of node //span[@id="count"]
  with string(count(browser:storeGet("notes")//note))
};
{ local:sync();
  on event "onclick" at //button[@id="add"] attach listener local:add;
  on event "onclick" at //button[@id="refresh"] attach listener local:show; }
</script>
</head><body>
<input id="txt" value=""/>
<button id="add">Add note</button>
<button id="refresh">Refresh count</button>
<p>Notes: <span id="count">0</span></p>
</body></html>|}

let () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let server = Appserver.App_server.create http ~host:"notes.example" in
  Doc_store.put_xml
    (Appserver.App_server.store server)
    ~name:"notes.xml" "<notes><note>from the server</note></notes>";

  let b = B.create ~href:"http://notes.example/app" ~clock ~http () in
  Xqib.Page.load b page;
  let doc = B.document b in
  let el id = Option.get (Dom.get_element_by_id doc id) in

  print_endline "online: synced the notes document into the local store";

  (* go offline *)
  b.B.online <- false;
  print_endline "going OFFLINE — the network is now unreachable\n";

  (* prove it: a direct fetch fails *)
  (match
     Xqib.Page.run_xquery b b.B.top_window
       "rest:get('http://notes.example/docs/notes.xml')"
   with
  | exception Xquery.Xq_error.Error e ->
      Printf.printf "direct fetch while offline: %s\n" (Xquery.Xq_error.to_string e)
  | _ -> print_endline "unexpectedly fetched while offline!");

  (* but the app keeps working against the store *)
  Dom.set_attribute (el "txt") (Xmlb.Qname.make "value") "buy milk";
  B.click b (el "add");
  Dom.set_attribute (el "txt") (Xmlb.Qname.make "value") "water plants";
  B.click b (el "add");
  B.click b (el "refresh");

  Printf.printf "notes count shown in the page (offline): %s\n"
    (Dom.string_value (el "count"));
  let notes =
    Xqib.Page.run_xquery b b.B.top_window
      "for $n in browser:storeGet('notes')//note return string($n)"
  in
  print_endline "notes in the client-side store:";
  List.iter (fun n -> print_endline ("  - " ^ Xdm_item.item_string n)) notes;

  (* store is per-origin: another origin sees nothing *)
  let other = B.create ~href:"http://other.example/" ~clock ~http () in
  Xqib.Page.load other "<html><body/></html>";
  (* share the same physical machine? each browser instance has its own
     store; per-origin isolation also holds within one browser: *)
  let visible =
    Xqib.Page.run_xquery b b.B.top_window "count(browser:storeList())"
  in
  Printf.printf "\ndocuments visible to this origin: %s\n"
    (Xdm_item.to_display_string visible)
