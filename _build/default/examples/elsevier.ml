(* The §6.1 Elsevier Reference 2.0 migration (Fig. 2): a server-side
   XQuery application is migrated to the client with the Migration
   tool; whole documents are cached in the browser so repeat browsing
   happens without touching the server. The example runs the same
   browse workload against both deployments and reports the server
   load. *)

module B = Xqib.Browser
module AS = Appserver.App_server

let browse_requests = 10

let server_side () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let e = Scenarios.make_elsevier http in
  (* every user navigation hits the server page *)
  for _ = 1 to browse_requests do
    let b = B.create ~clock ~http () in
    Xqib.Page.browse b ("http://" ^ AS.host e.Scenarios.server ^ e.Scenarios.browse_page_path)
  done;
  ( AS.evaluations e.Scenarios.server,
    Http_sim.request_count http ~host:(AS.host e.Scenarios.server),
    Virtual_clock.now clock )

let client_side () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let e = Scenarios.make_elsevier http in
  (* one browser session: loads the migrated page once, then browses
     client-side; the archive document is cached in the browser *)
  let b = B.create ~cache:true ~clock ~http () in
  Xqib.Page.browse b ("http://" ^ AS.host e.Scenarios.server ^ e.Scenarios.client_page_path);
  B.run b;
  for _ = 2 to browse_requests do
    (* further "navigations" re-run the browse query client-side *)
    ignore
      (Xqib.Page.run_xquery b b.B.top_window
         "count(rest:get('http://www.elsevier.example/docs/archive.xml')//article)")
  done;
  ( AS.evaluations e.Scenarios.server,
    Http_sim.request_count http ~host:(AS.host e.Scenarios.server),
    Virtual_clock.now clock )

let () =
  Printf.printf "Reference 2.0 — %d user browse actions\n\n" browse_requests;
  let s_evals, s_reqs, s_time = server_side () in
  let c_evals, c_reqs, c_time = client_side () in
  print_endline "                         server-side   migrated+cache";
  Printf.printf "server page evaluations  %8d      %8d\n" s_evals c_evals;
  Printf.printf "HTTP requests to server  %8d      %8d\n" s_reqs c_reqs;
  Printf.printf "virtual time (s)         %10.3f    %10.3f\n" s_time c_time;
  print_endline "\nThe migrated deployment serves the page and the archive";
  print_endline "document once; every further browse action is handled in";
  print_endline "the browser (paper §6.1: \"most user requests can be";
  print_endline "processed without any interaction with the Elsevier server\").";

  (* show a slice of what the client actually rendered *)
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let e = Scenarios.make_elsevier http in
  let b = B.create ~cache:true ~clock ~http () in
  Xqib.Page.browse b ("http://" ^ AS.host e.Scenarios.server ^ e.Scenarios.client_page_path);
  B.run b;
  let first_entries =
    Xqib.Page.run_xquery b b.B.top_window
      "for $li in (//li)[position() le 3] return string($li)"
  in
  print_endline "\nfirst rendered entries (client-side):";
  List.iter (fun item -> print_endline ("  " ^ Xdm_item.item_string item)) first_entries
