examples/webservice_calculator.mli:
