examples/webservice_calculator.ml: Dom Http_sim List Option Printf String Virtual_clock Web_service Xqib
