examples/elsevier.ml: Appserver Http_sim List Printf Scenarios Virtual_clock Xdm_item Xqib
