examples/multiplication_table.ml: Dom List Minijs Printf Scenarios Xqib
