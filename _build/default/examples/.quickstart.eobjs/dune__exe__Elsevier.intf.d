examples/elsevier.mli:
