examples/ajax_suggest.mli:
