examples/offline_notes.mli:
