examples/multiplication_table.mli:
