examples/mashup.ml: Dom Http_sim Minijs Option Printf Scenarios Virtual_clock Xdm_item Xmlb Xqib
