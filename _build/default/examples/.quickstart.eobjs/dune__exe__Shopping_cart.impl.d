examples/shopping_cart.ml: Appserver Doc_store Dom Http_sim Minijs Option Printf Scenarios Virtual_clock Xqib
