examples/quickstart.ml: Dom List Option Printf Xdm_item Xqib
