examples/mashup.mli:
