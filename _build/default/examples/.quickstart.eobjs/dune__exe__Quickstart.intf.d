examples/quickstart.mli:
