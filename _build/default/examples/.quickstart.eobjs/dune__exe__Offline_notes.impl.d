examples/offline_notes.ml: Appserver Doc_store Dom Http_sim List Option Printf Virtual_clock Xdm_item Xmlb Xqib Xquery
