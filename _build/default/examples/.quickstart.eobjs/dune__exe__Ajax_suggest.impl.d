examples/ajax_suggest.ml: Dom Http_sim Option Printf Scenarios Virtual_clock Xqib
