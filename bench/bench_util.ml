(* Timing helpers built on Bechamel: every timed experiment goes
   through [ns_per_run], which runs the thunk under Bechamel's
   monotonic clock and returns the OLS estimate of nanoseconds per
   run. *)

open Bechamel
open Toolkit

(* --smoke: tiny quotas and sizes so CI can exercise every bench path
   cheaply; sections consult [smoke_enabled] for their size lists. *)
let smoke = ref false
let set_smoke b = smoke := b
let smoke_enabled () = !smoke

let ns_per_run ?quota f =
  let quota =
    if !smoke then 0.05 else match quota with Some q -> q | None -> 0.5
  in
  let test = Test.make ~name:"b" (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock
      raw
  in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ ols ] -> (
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> est
      | _ -> Float.nan)
  | _ -> Float.nan

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let section id title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "==============================================================\n"

(* ------------------------------------------------------------------ *)
(* Machine-readable results: BENCH_<id>.json at the repo root, one
   entry per measured cell, so the perf trajectory is trackable
   across PRs. Skipped in smoke mode (smoke numbers are meaningless
   and would clobber the committed ones). *)

type json_entry = {
  e_name : string;
  e_n : int;
  e_ns : float;  (* ns per op *)
  e_speedup : float option;  (* vs the naive/baseline variant *)
}

let json_entry ?speedup ~name ~n ns =
  { e_name = name; e_n = n; e_ns = ns; e_speedup = speedup }

let write_json ~file entries =
  if not !smoke then begin
    let oc = open_out file in
    let num f = if Float.is_nan f then "null" else Printf.sprintf "%.1f" f in
    output_string oc "[\n";
    let last = List.length entries - 1 in
    List.iteri
      (fun i e ->
        Printf.fprintf oc
          "  {\"name\": %S, \"n\": %d, \"ns_per_op\": %s, \"speedup\": %s}%s\n"
          e.e_name e.e_n (num e.e_ns)
          (match e.e_speedup with
          | None -> "null"
          | Some s -> Printf.sprintf "%.2f" s)
          (if i < last then "," else ""))
      entries;
    output_string oc "]\n";
    close_out oc;
    Printf.printf "wrote %s (%d entries)\n" file (List.length entries)
  end
