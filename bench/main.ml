(* The benchmark harness: regenerates every figure and quantitative
   claim of the paper (see DESIGN.md §3 for the experiment index).

   F1 — Fig. 1  plug-in pipeline latency breakdown
   F2 — Fig. 2  Reference 2.0 server offload (server-side vs migrated)
   F3 — Fig. 3  JS/XQuery co-existence on shared events and DOM
   T1 — §6.3    lines-of-code comparison
   T2 — §7      XQuery vs JavaScript in-browser performance
   T3 — §4.2.1  window-tree security (semantics + overhead)
   T4 — §4.4    async `behind` vs synchronous calls (UI blocking)
   T5 — §5.1    ablations: syntax vs HOF fallback; optimizer on/off
   T6 — §2.2    XPath embedded in JavaScript vs native XQuery
   T7 — §6.1    offload & completion under fault injection (retry/backoff/
                Local_store fallback vs no-resilience baseline)
   T13 — §7     closure compiler vs tree-walking evaluator (and T8–T12,
                see EXPERIMENTS.md for the full index) *)

module B = Xqib.Browser
module AS = Appserver.App_server
module Fleet = Appserver.Fleet
open Bench_util

let () = Minijs.Js_interp.install ()

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)

let browser_with ?cache ?(page = "<html><body/></html>") () =
  let b = B.create ?cache () in
  Xqib.Page.load b page;
  b

let wide_page n =
  let buf = Buffer.create (n * 32) in
  Buffer.add_string buf "<html><body><div id=\"root\">";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "<item id=\"i%d\" class=\"%s\">value %d</item>" i
         (if i mod 2 = 0 then "even" else "odd")
         i)
  done;
  Buffer.add_string buf "</div></body></html>";
  Buffer.contents buf

let run_xq b src = Xqib.Page.run_xquery b b.B.top_window src

(* ------------------------------------------------------------------ *)
(* F1 — pipeline latency breakdown (Fig. 1)                            *)

let bench_f1 () =
  section "F1" "plug-in pipeline (Fig. 1): parse page / compile / run / dispatch";
  Printf.printf "%-10s %14s %14s %14s %14s %14s\n" "page size" "parse+DOM"
    "compile" "run main" "dispatch" "render";
  List.iter
    (fun n ->
      let html = wide_page n in
      let parse = ns_per_run (fun () -> ignore (Sys.opaque_identity (Dom.of_string html))) in
      let script =
        "declare updating function local:l($evt, $obj) { insert node <hit/> into //div[@id='root'] }; \
         on event \"onclick\" at (//item)[1] attach listener local:l"
      in
      let compile =
        ns_per_run (fun () ->
            ignore
              (Sys.opaque_identity
                 (Xquery.Parser.parse_program (Xquery.Engine.default_static ()) script)))
      in
      let run_main =
        ns_per_run ~quota:1.0 (fun () ->
            let b = B.create () in
            Xqib.Page.load b html;
            ignore (Sys.opaque_identity (run_xq b script)))
      in
      (* one prepared page, repeated dispatch: the listener loop *)
      let b = B.create () in
      Xqib.Page.load b html;
      ignore (run_xq b script);
      let target = List.hd (Dom.get_elements_by_local_name (B.document b) "item") in
      let dispatch = ns_per_run (fun () -> B.dispatch b ~target "onclick") in
      let render =
        ns_per_run (fun () ->
            ignore (Sys.opaque_identity (Xqib.Renderer.render (B.document b))))
      in
      Printf.printf "%-10d %14s %14s %14s %14s %14s\n" n (pretty_ns parse)
        (pretty_ns compile) (pretty_ns run_main) (pretty_ns dispatch)
        (pretty_ns render))
    (if smoke_enabled () then [ 10 ] else [ 10; 100; 1000 ])

(* ------------------------------------------------------------------ *)
(* F2 — server offload (Fig. 2)                                        *)

let bench_f2 () =
  section "F2" "Reference 2.0 offload (Fig. 2): server-side vs migrated+cache";
  Printf.printf "%-10s | %-28s | %-28s\n" "" "server-side rendering" "migrated + client cache";
  Printf.printf "%-10s | %8s %9s %8s | %8s %9s %8s\n" "requests" "evals" "reqs"
    "time(s)" "evals" "reqs" "time(s)";
  List.iter
    (fun n ->
      let server_side () =
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let e = Scenarios.make_elsevier http in
        Http_sim.reset_stats http;
        for _ = 1 to n do
          let b = B.create ~clock ~http () in
          Xqib.Page.browse b
            ("http://" ^ AS.host e.Scenarios.server ^ e.Scenarios.browse_page_path)
        done;
        ( AS.evaluations e.Scenarios.server,
          Http_sim.request_count http ~host:(AS.host e.Scenarios.server),
          Virtual_clock.now clock )
      in
      let client_side () =
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let e = Scenarios.make_elsevier http in
        Http_sim.reset_stats http;
        let b = B.create ~cache:true ~clock ~http () in
        Xqib.Page.browse b
          ("http://" ^ AS.host e.Scenarios.server ^ e.Scenarios.client_page_path);
        B.run b;
        for _ = 2 to n do
          ignore
            (run_xq b
               "count(rest:get('http://www.elsevier.example/docs/archive.xml')//article)")
        done;
        ( AS.evaluations e.Scenarios.server,
          Http_sim.request_count http ~host:(AS.host e.Scenarios.server),
          Virtual_clock.now clock )
      in
      let se, sr, st = server_side () in
      let ce, cr, ct = client_side () in
      Printf.printf "%-10d | %8d %9d %8.3f | %8d %9d %8.3f\n" n se sr st ce cr ct)
    (if smoke_enabled () then [ 1; 5 ] else [ 1; 5; 20; 50 ]);
  print_endline
    "\nshape check: server evaluations grow linearly server-side and stay at 0\n\
     when migrated; requests collapse to page+document with the client cache."

(* ------------------------------------------------------------------ *)
(* F3 — co-existence (Fig. 3)                                          *)

let bench_f3 () =
  section "F3" "JS/XQuery co-existence (Fig. 3): both languages on one event";
  let page_js_only =
    {|<html><head><script type="text/javascript">
      function h(e) { e.target.setAttribute("js", "1"); }
      document.getElementById("b").addEventListener("onclick", h, false);
      </script></head><body><button id="b"/></body></html>|}
  in
  let page_xq_only =
    {|<html><head><script type="text/xquery">
      declare updating function local:h($evt, $obj) {
        insert node attribute xq { "1" } into $obj
      };
      on event "onclick" at //button attach listener local:h
      </script></head><body><button id="b"/></body></html>|}
  in
  let page_both =
    {|<html><head><script type="text/javascript">
      function h(e) { e.target.setAttribute("js", "1"); }
      document.getElementById("b").addEventListener("onclick", h, false);
      </script><script type="text/xquery">
      declare updating function local:h($evt, $obj) {
        insert node attribute xq { "1" } into $obj
      };
      on event "onclick" at //button attach listener local:h
      </script></head><body><button id="b"/></body></html>|}
  in
  let dispatch_cost page =
    let b = B.create () in
    Xqib.Page.load b page;
    let btn = Option.get (Dom.get_element_by_id (B.document b) "b") in
    ns_per_run (fun () -> B.dispatch b ~target:btn "onclick")
  in
  Printf.printf "%-26s %14s\n" "handlers on the event" "dispatch cost";
  Printf.printf "%-26s %14s\n" "JavaScript only" (pretty_ns (dispatch_cost page_js_only));
  Printf.printf "%-26s %14s\n" "XQuery only" (pretty_ns (dispatch_cost page_xq_only));
  Printf.printf "%-26s %14s\n" "both (the mash-up case)" (pretty_ns (dispatch_cost page_both));
  (* semantics: both handlers really run on one click *)
  let b = B.create () in
  Xqib.Page.load b page_both;
  let btn = Option.get (Dom.get_element_by_id (B.document b) "b") in
  B.click b btn;
  Printf.printf "both handlers observed one click: js=%s xq=%s\n"
    (Option.value ~default:"-" (Dom.attribute_local btn "js"))
    (Option.value ~default:"-" (Dom.attribute_local btn "xq"))

(* ------------------------------------------------------------------ *)
(* T1 — lines of code (§6.3)                                           *)

let bench_t1 () =
  section "T1" "lines of code (§6.3): one language vs the technology jungle";
  let rows =
    [
      ( "shopping cart",
        Scenarios.loc Scenarios.shop_jsp_template,
        "JSP+SQL+JS+XPath",
        Scenarios.loc Scenarios.shop_xquery_page );
      ( "multiplication table",
        Scenarios.loc (Scenarios.mult_table_js_page 9),
        "JavaScript",
        Scenarios.loc (Scenarios.mult_table_xquery_page 9) );
    ]
  in
  Printf.printf "%-22s %22s %8s %8s %7s\n" "application" "baseline stack" "LoC"
    "XQuery" "ratio";
  List.iter
    (fun (name, base_loc, stack, xq_loc) ->
      Printf.printf "%-22s %22s %8d %8d %6.1fx\n" name stack base_loc xq_loc
        (float_of_int base_loc /. float_of_int xq_loc))
    rows;
  print_endline
    "\nshape check: the paper reports 77 JS vs 29 XQuery lines (2.7x) for its\n\
     multiplication-table demo; the XQuery versions here stay ~2-3x smaller."

(* ------------------------------------------------------------------ *)
(* T2 — XQuery vs JavaScript performance (§7 future work)              *)

let bench_t2 () =
  section "T2" "XQuery vs JavaScript in the browser (§7): navigation / update / events";
  let entries = ref [] in
  let record ~name ~n ~js ~xq =
    entries :=
      json_entry ~name:(name ^ "/xquery") ~n ~speedup:(js /. xq) xq
      :: json_entry ~name:(name ^ "/js") ~n js
      :: !entries
  in
  Printf.printf "%-8s %-22s %14s %14s\n" "n" "operation" "JavaScript" "XQuery";
  List.iter
    (fun n ->
      let page = wide_page n in
      (* navigation: count elements of class 'even' *)
      let bj = browser_with ~page () in
      let js_nav =
        ns_per_run (fun () ->
            ignore
              (Sys.opaque_identity
                 (Minijs.Js_interp.eval_in_window bj bj.B.top_window
                    "document.evaluate(\"//item[@class='even']\", document, null, \
                     XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null).snapshotLength")))
      in
      let bx = browser_with ~page () in
      let xq_nav =
        ns_per_run (fun () ->
            ignore (Sys.opaque_identity (run_xq bx "count(//item[@class='even'])")))
      in
      record ~name:"navigation" ~n ~js:js_nav ~xq:xq_nav;
      Printf.printf "%-8d %-22s %14s %14s\n" n "DOM navigation" (pretty_ns js_nav)
        (pretty_ns xq_nav);
      (* update: insert k elements per run *)
      let k = 50 in
      let bj = browser_with ~page () in
      Minijs.Js_interp.run_script bj bj.B.top_window
        "var root = document.getElementById('root');\n\
         function addSome(k) { for (var i = 0; i < k; i++) {\n\
           var el = document.createElement('extra');\n\
           el.appendChild(document.createTextNode('x'));\n\
           root.appendChild(el); } }";
      let js_upd =
        ns_per_run (fun () ->
            Minijs.Js_interp.run_script bj bj.B.top_window "addSome(50);")
      in
      let bx = browser_with ~page () in
      ignore
        (run_xq bx
           "declare updating function local:add($k) { \
              insert nodes (for $i in 1 to $k return <extra>x</extra>) \
              into //div[@id='root'] } ; 0");
      let xq_upd =
        ns_per_run (fun () -> ignore (run_xq bx (Printf.sprintf "local:add(%d)" k)))
      in
      record ~name:"update" ~n ~js:js_upd ~xq:xq_upd;
      Printf.printf "%-8d %-22s %14s %14s\n" n
        (Printf.sprintf "DOM update (+%d)" k)
        (pretty_ns js_upd) (pretty_ns xq_upd);
      (* events: listener on the container, dispatch from a leaf *)
      let bj = browser_with ~page () in
      Minijs.Js_interp.run_script bj bj.B.top_window
        "var hits = 0;\n\
         document.getElementById('root').addEventListener('ping', function(e) { hits++; }, false);";
      let jst = List.hd (Dom.get_elements_by_local_name (B.document bj) "item") in
      let js_evt = ns_per_run (fun () -> B.dispatch bj ~target:jst "ping") in
      let bx = browser_with ~page () in
      ignore
        (run_xq bx
           "declare function local:noop($evt, $obj) { () }; \
            on event \"ping\" at //div[@id='root'] attach listener local:noop");
      let xst = List.hd (Dom.get_elements_by_local_name (B.document bx) "item") in
      let xq_evt = ns_per_run (fun () -> B.dispatch bx ~target:xst "ping") in
      record ~name:"event-dispatch" ~n ~js:js_evt ~xq:xq_evt;
      Printf.printf "%-8d %-22s %14s %14s\n" n "event dispatch (bubble)"
        (pretty_ns js_evt) (pretty_ns xq_evt))
    (if smoke_enabled () then [ 100 ] else [ 100; 1000; 10000 ]);
  write_json ~file:"BENCH_T2.json" (List.rev !entries)

(* ------------------------------------------------------------------ *)
(* T3 — window security (§4.2.1)                                       *)

let bench_t3 () =
  section "T3" "window-tree security (§4.2.1): semantics and overhead";
  let make_browser policy frames foreign =
    let b = B.create ~policy ~href:"http://app.example/" () in
    Xqib.Page.load b "<html><body/></html>";
    for i = 1 to frames do
      Xqib.Windows.add_frame ~parent:b.B.top_window
        (Xqib.Windows.create
           ~name:(Printf.sprintf "frame%d" i)
           ~href:
             (if i <= foreign then Printf.sprintf "http://evil%d.example/" i
              else "http://app.example/sub")
           ())
    done;
    b
  in
  Printf.printf "%-22s %10s %10s\n" "setup (10 frames)" "same-org" "allow-all";
  List.iter
    (fun foreign ->
      let count policy =
        let b = make_browser policy 10 foreign in
        Xdm_item.to_display_string
          (run_xq b "count(browser:top()//window[@name])")
      in
      Printf.printf "%-22s %10s %10s\n"
        (Printf.sprintf "%d cross-origin" foreign)
        (count Xqib.Origin.Same_origin)
        (count Xqib.Origin.Allow_all))
    [ 0; 5; 10 ];
  let cost policy =
    let b = make_browser policy 10 5 in
    ns_per_run (fun () ->
        ignore (Sys.opaque_identity (run_xq b "count(browser:top()//window)")))
  in
  Printf.printf "\nmaterialization cost: same-origin=%s allow-all=%s\n"
    (pretty_ns (cost Xqib.Origin.Same_origin))
    (pretty_ns (cost Xqib.Origin.Allow_all));
  let b = make_browser Xqib.Origin.Same_origin 2 0 in
  ignore (run_xq b "replace value of node browser:top()/frames/window[1]/status with 'hi'");
  Printf.printf "same-origin frame status write-back: %S\n"
    (List.hd b.B.top_window.Xqib.Windows.frames).Xqib.Windows.status

(* ------------------------------------------------------------------ *)
(* T4 — async behind vs synchronous (§4.4)                             *)

let bench_t4 () =
  section "T4" "AJAX suggest (§4.4): UI-blocked time, sync vs `behind`";
  Printf.printf "%-14s %12s %12s %14s\n" "latency (ms)" "sync UI(s)" "async UI(s)"
    "async total(s)";
  List.iter
    (fun latency_ms ->
      let latency = { Http_sim.base = float_of_int latency_ms /. 1000.; per_kb = 0. } in
      let keystrokes = "albert" in
      let sync_blocked () =
        let clock = Virtual_clock.create () in
        let http = Http_sim.create ~latency clock in
        ignore (Scenarios.setup_suggest http);
        let b = B.create ~clock ~http () in
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:hint($evt, $obj) {
              replace value of node //*[@id="txtHint"]
              with string-join(rest:get(concat("http://hints.example/suggest?q=",
                                               string($obj/@value)))//hint/text(), ", ")
            };
            on event "onkeyup" at //input attach listener local:hint
            </script></head><body><input id="t" value=""/><span id="txtHint"/></body></html>|};
        let input = Option.get (Dom.get_element_by_id (B.document b) "t") in
        B.type_text b input keystrokes;
        b.B.ui_blocked
      in
      let async_blocked, async_total =
        let clock = Virtual_clock.create () in
        let http = Http_sim.create ~latency clock in
        let page = Scenarios.setup_suggest http in
        let b = B.create ~clock ~http () in
        Xqib.Page.load b page;
        let input = Option.get (Dom.get_element_by_id (B.document b) "text1") in
        B.type_text b input keystrokes;
        B.run b;
        (b.B.ui_blocked, Virtual_clock.now clock)
      in
      Printf.printf "%-14d %12.3f %12.3f %14.3f\n" latency_ms (sync_blocked ())
        async_blocked async_total)
    [ 10; 50; 200 ];
  print_endline
    "\nshape check: synchronous calls block the UI linearly in service latency;\n\
     `behind` keeps UI-blocked time at ~0 while the work happens off-thread."

(* ------------------------------------------------------------------ *)
(* T5 — ablations (§5.1)                                               *)

let bench_t5 () =
  section "T5" "ablations (§5.1): syntax extension vs HOF fallback; optimizer";
  let page = wide_page (if smoke_enabled () then 50 else 200) in
  let reg_cost src =
    ns_per_run ~quota:1.0 (fun () ->
        let b = B.create () in
        Xqib.Page.load b page;
        ignore (run_xq b src))
  in
  let syntax_src =
    "declare function local:h($evt, $obj) { () }; \
     on event \"ping\" at //item attach listener local:h"
  in
  let hof_src =
    "declare function local:h($evt, $obj) { () }; \
     browser:addEventListener(//item, \"ping\", \"local:h\")"
  in
  Printf.printf "event registration on 200 nodes:\n";
  Printf.printf "  proposed syntax (on event ... attach)    %14s\n"
    (pretty_ns (reg_cost syntax_src));
  Printf.printf "  HOF fallback (browser:addEventListener)  %14s\n"
    (pretty_ns (reg_cost hof_src));
  let style_syntax = "set style \"color\" of //item to \"red\"" in
  let style_hof = "browser:setStyle(//item, \"color\", \"red\")" in
  Printf.printf "style manipulation on 200 nodes:\n";
  Printf.printf "  proposed syntax (set style ... to)       %14s\n"
    (pretty_ns (reg_cost style_syntax));
  Printf.printf "  HOF fallback (browser:setStyle)          %14s\n"
    (pretty_ns (reg_cost style_hof));
  (* optimizer ablation *)
  let doc = Dom.of_string (wide_page (if smoke_enabled () then 200 else 2000)) in
  let query =
    "count(//item[@class='even'][true()]) + (if (count(//item) > 0) then 1 else 0)"
  in
  let eval_with opt =
    let compiled =
      Xquery.Engine.compile ~optimize:opt ~static:(Xquery.Engine.default_static ()) query
    in
    ns_per_run (fun () ->
        ignore
          (Sys.opaque_identity
             (Xquery.Engine.run ~context_item:(Xdm_item.Node doc) compiled)))
  in
  Printf.printf "optimizer ablation (query over 2000 items):\n";
  Printf.printf "  rewrites off                             %14s\n" (pretty_ns (eval_with false));
  Printf.printf "  rewrites on                              %14s\n" (pretty_ns (eval_with true))

(* ------------------------------------------------------------------ *)
(* T6 — embedded XPath vs native XQuery (§2.2)                         *)

let bench_t6 () =
  section "T6" "XPath embedded in JavaScript vs native XQuery (§2.2)";
  let entries = ref [] in
  Printf.printf "%-8s %22s %22s\n" "divs" "JS document.evaluate" "native XQuery path";
  List.iter
    (fun n ->
      let buf = Buffer.create (n * 24) in
      Buffer.add_string buf "<html><body>";
      for i = 1 to n do
        Buffer.add_string buf
          (Printf.sprintf "<div>%s %d</div>"
             (if i mod 10 = 0 then "all you need is love" else "filler text")
             i)
      done;
      Buffer.add_string buf "</body></html>";
      let page = Buffer.contents buf in
      let bj = browser_with ~page () in
      let js =
        ns_per_run (fun () ->
            ignore
              (Sys.opaque_identity
                 (Minijs.Js_interp.eval_in_window bj bj.B.top_window
                    "document.evaluate(\"//div[contains(., 'love')]\", document, null, \
                     XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null).snapshotLength")))
      in
      let bx = browser_with ~page () in
      let xq =
        ns_per_run (fun () ->
            ignore (Sys.opaque_identity (run_xq bx "count(//div[contains(., 'love')])")))
      in
      entries :=
        json_entry ~name:"contains-path/xquery" ~n ~speedup:(js /. xq) xq
        :: json_entry ~name:"contains-path/js" ~n js
        :: !entries;
      Printf.printf "%-8d %22s %22s\n" n (pretty_ns js) (pretty_ns xq))
    (if smoke_enabled () then [ 100 ] else [ 100; 1000; 5000 ]);
  write_json ~file:"BENCH_T6.json" (List.rev !entries);
  print_endline
    "\nshape check: both run on the same engine underneath; the JS path adds\n\
     interpreter and API-marshalling overhead on top (the paper's motivation\n\
     for using XQuery directly rather than embedding XPath strings in JS)."

(* ------------------------------------------------------------------ *)
(* T7 — fault injection (flaky network)                                 *)

let bench_t7 () =
  section "T7" "flaky network (§6.1): retry+backoff+cache fallback vs baseline";
  let seed = 42 in
  Printf.printf
    "(20 visits per cell, seed %d; virtual-time metrics, deterministic)\n" seed;
  Printf.printf "%-5s %-9s | %5s %5s %5s %6s %8s | %7s %8s %5s\n" "rate"
    "client" "pgOK" "qryOK" "lost" "reqs" "time(s)" "retries" "fallback"
    "inj";
  List.iter
    (fun rate ->
      List.iter
        (fun resilient ->
          let r = Scenarios.run_elsevier_flaky ~rate ~seed ~resilient () in
          Printf.printf "%-5.2f %-9s | %5d %5d %5d %6d %8.2f | %7d %8d %5d\n"
            rate
            (if resilient then "resilient" else "baseline")
            r.Scenarios.pages_ok r.Scenarios.queries_ok
            (r.Scenarios.pages_lost + r.Scenarios.queries_failed)
            r.Scenarios.server_requests r.Scenarios.elapsed
            r.Scenarios.retries r.Scenarios.fallback_hits
            r.Scenarios.injected_faults)
        [ false; true ])
    (if smoke_enabled () then [ 0.0; 0.3 ] else [ 0.0; 0.1; 0.3; 0.5; 0.7 ]);
  print_endline
    "\nshape check: at rate 0 both columns are identical (zero-cost when\n\
     disabled); as the rate grows the baseline loses visits while the\n\
     resilient client completes them all, paying retries + backoff time."

(* ------------------------------------------------------------------ *)
(* T8 — DOM acceleration layer: order keys + indexes vs naive          *)

(* Two-level document (~sqrt n sections of ~sqrt n items each): child
   lists stay moderately wide so the naive path comparison pays its
   child-index scans without making the naive cells unmeasurably slow. *)
let t8_sections n = max 1 (int_of_float (ceil (sqrt (float_of_int n))))

let t8_doc n =
  let secs = t8_sections n in
  let per = (n + secs - 1) / secs in
  let buf = Buffer.create (n * 32) in
  Buffer.add_string buf "<html><body><div id=\"root\">";
  let k = ref 0 in
  for s = 1 to secs do
    Buffer.add_string buf (Printf.sprintf "<sec id=\"s%d\">" s);
    for _ = 1 to per do
      if !k < n then begin
        incr k;
        Buffer.add_string buf (Printf.sprintf "<item id=\"i%d\">v%d</item>" !k !k)
      end
    done;
    Buffer.add_string buf "</sec>"
  done;
  Buffer.add_string buf "</div></body></html>";
  Dom.of_string (Buffer.contents buf)

let bench_t8 () =
  section "T8" "DOM acceleration: order keys, indexes, axis fast paths vs naive ablation";
  let entries = ref [] in
  Printf.printf "%-8s %-22s %14s %14s %9s\n" "n" "workload" "accelerated"
    "naive" "speedup";
  let measure ~name ~n f =
    Dom.set_acceleration true;
    let fast = ns_per_run f in
    Dom.set_acceleration false;
    let naive = ns_per_run f in
    Dom.set_acceleration true;
    let speedup = naive /. fast in
    entries :=
      json_entry ~name:(name ^ "/naive") ~n naive
      :: json_entry ~name ~n ~speedup fast
      :: !entries;
    Printf.printf "%-8d %-22s %14s %14s %8.1fx\n" n name (pretty_ns fast)
      (pretty_ns naive) speedup
  in
  List.iter
    (fun n ->
      let doc = t8_doc n in
      let all = Dom.descendants doc in
      let sorted_seq = Xdm_item.of_nodes all in
      let reversed_seq = Xdm_item.of_nodes (List.rev all) in
      let compiled src =
        Xquery.Engine.compile ~static:(Xquery.Engine.default_static ()) src
      in
      let run q () =
        ignore
          (Sys.opaque_identity
             (Xquery.Engine.run ~context_item:(Xdm_item.Node doc) q))
      in
      let mid = Printf.sprintf "s%d" (max 1 (t8_sections n / 2)) in
      let q_follow =
        compiled (Printf.sprintf "count(//sec[@id='%s']/following::item)" mid)
      in
      let q_preceding =
        compiled (Printf.sprintf "count(//sec[@id='%s']/preceding::item)" mid)
      in
      let q_desc = compiled "count(//item)" in
      let last_id = Printf.sprintf "i%d" n in
      measure ~name:"doc-order/sorted" ~n (fun () ->
          ignore (Sys.opaque_identity (Xdm_item.document_order sorted_seq)));
      measure ~name:"doc-order/reversed" ~n (fun () ->
          ignore (Sys.opaque_identity (Xdm_item.document_order reversed_seq)));
      measure ~name:"following" ~n (run q_follow);
      measure ~name:"preceding" ~n (run q_preceding);
      measure ~name:"descendant-by-name" ~n (run q_desc);
      measure ~name:"by-id" ~n (fun () ->
          ignore (Sys.opaque_identity (Dom.get_element_by_id doc last_id))))
    (if smoke_enabled () then [ 64 ] else [ 100; 1000; 10000 ]);
  write_json ~file:"BENCH_T8.json" (List.rev !entries);
  print_endline
    "\nshape check: the accelerated column must win by >=5x at n=10000 on the\n\
     doc-order and following/preceding workloads; both columns compute\n\
     identical results (the ablation switch is the test oracle)."

(* ------------------------------------------------------------------ *)
(* T9 — observability overhead: tracing+metrics off vs on               *)

(* Reset both registries and force a known enabled-state around a
   measurement, so T9 cells cannot leak records into each other. *)
let with_obs enabled f =
  Obs.Trace.set_enabled enabled;
  Obs.Metrics.set_enabled enabled;
  let finish () =
    Obs.Trace.set_enabled false;
    Obs.Metrics.set_enabled false;
    Obs.Trace.reset ();
    Obs.Metrics.reset ()
  in
  match f () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

let bench_t9 ?(check = false) ?trace_file () =
  section "T9" "observability: span/metric hook overhead, off vs on";
  let n = if smoke_enabled () then 64 else 1000 in
  let doc = t8_doc n in
  let q =
    Xquery.Engine.compile ~static:(Xquery.Engine.default_static ())
      "count(//item) + count(//sec) + count(//item[starts-with(@id, 'i1')])"
  in
  let work () =
    ignore
      (Sys.opaque_identity (Xquery.Engine.run ~context_item:(Xdm_item.Node doc) q))
  in
  (* the zero-cost claim is two-sided: (1) a disabled run records
     nothing at all, (2) the residual flag checks are too cheap to
     measure. (1) is deterministic; assert it outright. *)
  let silent =
    with_obs false (fun () ->
        work ();
        Obs.Metrics.counters () = [] && Obs.Trace.roots () = [])
  in
  Printf.printf "disabled run records nothing: %b\n" silent;
  if check && not silent then begin
    prerr_endline "T9 FAIL: disabled run left records in the registries";
    exit 1
  end;
  let off = with_obs false (fun () -> ns_per_run work) in
  let on = with_obs true (fun () -> ns_per_run work) in
  Printf.printf "%-28s %14s\n" "observability" "query cost";
  Printf.printf "%-28s %14s\n" "disabled (default)" (pretty_ns off);
  Printf.printf "%-28s %14s\n" "tracing + metrics enabled" (pretty_ns on);
  Printf.printf "enabled overhead: %+.1f%%\n" (100. *. ((on /. off) -. 1.));
  write_json ~file:"BENCH_T9.json"
    [
      json_entry ~name:"obs-off" ~n off;
      json_entry ~name:"obs-on" ~n ~speedup:(off /. on) on;
    ];
  if check then begin
    (* (2) cannot be measured directly — there is no hook-free build to
       compare against — so gate on an A/A test instead: two disabled
       runs must agree, i.e. whatever the guards cost is below the
       measurement noise floor. The workload is microsecond-scale, so
       every noise source here is additive — a GC major slice, a
       preempted CPU slice, or a throttled clock only ever makes an
       estimate slower, never faster. The robust statistic for purely
       additive noise is the minimum, not the mean or median: take
       five estimates per side, interleaved a,b,a,b,... so slow drift
       (frequency ramp-up, thermal) hits both sides alike, discard a
       warmup run for the cold-start transient, and compare the
       per-side minima — the fastest clean window each side achieved.
       The residual bar is 10%, the same bar every other A/A gate in
       this suite uses (T11–T13): tighter bars sit below the noise
       floor of the 0.05 s smoke sampling budget on shared hosts and
       fail for identical binaries. Retried to absorb runs where even
       the minima catch no clean window. See EXPERIMENTS.md §T9. *)
    let rec aa tries =
      Gc.major ();
      ignore (with_obs false (fun () -> ns_per_run work));
      let samples = ref [] in
      for _ = 1 to 5 do
        let a = with_obs false (fun () -> ns_per_run work) in
        let b = with_obs false (fun () -> ns_per_run work) in
        samples := (a, b) :: !samples
      done;
      let min_of side =
        List.fold_left (fun m p -> Float.min m (side p)) infinity !samples
      in
      let a = min_of fst and b = min_of snd in
      let delta = Float.abs (a -. b) /. Float.min a b in
      Printf.printf "A/A disabled delta (try %d): %.2f%%\n" tries (100. *. delta);
      if delta <= 0.10 then ()
      else if tries >= 3 then begin
        prerr_endline "T9 FAIL: disabled-mode A/A delta above 10% after 3 tries";
        exit 1
      end
      else aa (tries + 1)
    in
    aa 1
  end;
  match trace_file with
  | None -> ()
  | Some file ->
      with_obs true (fun () ->
          work ();
          let json = Obs.Trace.export_json () in
          (match Obs.Json.validate json with
          | Ok () -> ()
          | Error m ->
              Printf.eprintf "T9 FAIL: malformed trace JSON: %s\n" m;
              exit 1);
          let oc = open_out file in
          output_string oc json;
          close_out oc;
          Printf.printf "traced run written to %s (validated)\n" file)

(* ------------------------------------------------------------------ *)
(* T10 — compiled-query cache: repeated page-load compile cost          *)

(* Run [f] with the query cache forced on/off and emptied of entries
   and stats, restoring the default (enabled) afterwards. *)
let with_cache enabled f =
  let qc = Xquery.Engine.query_cache in
  Xquery.Query_cache.set_enabled enabled;
  Xquery.Query_cache.clear qc;
  Xquery.Query_cache.reset_stats qc;
  let finish () = Xquery.Query_cache.set_enabled true in
  match f () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

(* A page script shaped like real page code: a prolog of function
   declarations plus a small body. Reloading the page re-compiles it
   against a fresh static context every time — the cache's target. *)
let t10_script nfuns =
  let buf = Buffer.create (nfuns * 64) in
  for i = 1 to nfuns do
    Buffer.add_string buf
      (Printf.sprintf
         "declare function local:f%d($x) { if ($x > %d) then $x + %d else local:f%d($x + 1) };\n"
         i i i i)
  done;
  Buffer.add_string buf "local:f1(0)";
  Buffer.contents buf

let bench_t10 ?(check = false) () =
  section "T10"
    "compiled-query cache: repeated page-load compile cost, off vs cold vs warm";
  let qc = Xquery.Engine.query_cache in
  let entries = ref [] in
  Printf.printf "%-8s %14s %14s %14s %9s\n" "decls" "cache off" "cold miss"
    "warm hit" "speedup";
  List.iter
    (fun nfuns ->
      let src = t10_script nfuns in
      let compile_once () =
        ignore
          (Sys.opaque_identity
             (Xquery.Engine.compile_cached
                ~static:(Xquery.Engine.default_static ())
                src))
      in
      let off = with_cache false (fun () -> ns_per_run compile_once) in
      let cold =
        with_cache true (fun () ->
            ns_per_run (fun () ->
                Xquery.Query_cache.clear qc;
                compile_once ()))
      in
      let warm =
        with_cache true (fun () ->
            compile_once ();
            ns_per_run compile_once)
      in
      let speedup = off /. warm in
      entries :=
        json_entry ~name:"compile/warm" ~n:nfuns ~speedup warm
        :: json_entry ~name:"compile/cold" ~n:nfuns cold
        :: json_entry ~name:"compile/off" ~n:nfuns off
        :: !entries;
      Printf.printf "%-8d %14s %14s %14s %8.1fx\n" nfuns (pretty_ns off)
        (pretty_ns cold) (pretty_ns warm) speedup;
      if check && not (speedup >= 5.) then begin
        Printf.eprintf
          "T10 FAIL: warm cache speedup %.1fx below the 5x floor (%d decls)\n"
          speedup nfuns;
        exit 1
      end)
    (if smoke_enabled () then [ 20 ] else [ 5; 20; 80 ]);
  (* the end-to-end view: a full page load, script compile included *)
  let nfuns = if smoke_enabled () then 20 else 40 in
  let page =
    Printf.sprintf
      "<html><head><script type=\"text/xquery\">%s</script></head><body><div \
       id=\"root\"/></body></html>"
      (t10_script nfuns)
  in
  let load_page () =
    let b = B.create () in
    Xqib.Page.load b page;
    B.run b
  in
  let load_off = with_cache false (fun () -> ns_per_run ~quota:1.0 load_page) in
  let load_warm =
    with_cache true (fun () ->
        load_page ();
        ns_per_run ~quota:1.0 load_page)
  in
  entries :=
    json_entry ~name:"page-load/warm" ~n:nfuns ~speedup:(load_off /. load_warm)
      load_warm
    :: json_entry ~name:"page-load/off" ~n:nfuns load_off
    :: !entries;
  Printf.printf "full page load (%d decls): off=%s warm=%s (%.1fx)\n" nfuns
    (pretty_ns load_off) (pretty_ns load_warm) (load_off /. load_warm);
  write_json ~file:"BENCH_T10.json" (List.rev !entries);
  if check then begin
    (* transparency gate (a): a scenario page must render the same DOM
       with the cache on (twice, so the second load is a hit) and off *)
    let render_with enabled =
      with_cache enabled (fun () ->
          let render () =
            let b = B.create () in
            Xqib.Page.load b (Scenarios.mult_table_xquery_page 9);
            B.run b;
            Dom.serialize (B.document b)
          in
          let first = render () in
          let second = render () in
          (first, second))
    in
    let off1, off2 = render_with false in
    let on1, on2 = render_with true in
    if not (off1 = off2 && off1 = on1 && off1 = on2) then begin
      prerr_endline "T10 FAIL: cache-on render differs from cache-off render";
      exit 1
    end;
    (* transparency gate (b): the second cache-on load above and the
       warm measurements must actually have hit the cache *)
    let hit_rate_seen =
      with_cache true (fun () ->
          let compile_twice () =
            ignore
              (Xquery.Engine.compile_cached
                 ~static:(Xquery.Engine.default_static ())
                 "1 + 1")
          in
          compile_twice ();
          compile_twice ();
          (Xquery.Query_cache.stats qc).Xquery.Query_cache.hits
    ) in
    if hit_rate_seen = 0 then begin
      prerr_endline "T10 FAIL: warm re-compile recorded zero cache hits";
      exit 1
    end;
    print_endline "T10 check: cache-on/off renders identical, warm hits observed"
  end

(* ------------------------------------------------------------------ *)
(* T11 — streaming pipeline: lazy cursors + early exit vs eager        *)

(* a wide flat document with an early witness: @hit='1' only at row
   10, so early-exit consumers stop after a tiny prefix of n *)
let t11_doc n =
  let buf = Buffer.create (n * 48) in
  Buffer.add_string buf "<html><body><div id=\"root\">";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "<row id=\"r%d\" hit=\"%d\">v%d</row>" i
         (if i = 10 then 1 else 0)
         i)
  done;
  Buffer.add_string buf "</div></body></html>";
  Dom.of_string (Buffer.contents buf)

let with_streaming enabled f =
  let prev = Xquery.Eval.streaming_enabled () in
  Xquery.Eval.set_streaming enabled;
  Fun.protect ~finally:(fun () -> Xquery.Eval.set_streaming prev) f

let bench_t11 ?(check = false) () =
  section "T11"
    "streaming pipeline: lazy cursors with early exit vs eager ablation";
  let entries = ref [] in
  (* early-exit consumers: the streamed prefix is O(1) in n *)
  let early_queries =
    [
      ("first-item", "(//row)[1]");
      ("exists-hit", "exists(//row[@hit='1'])");
      ("quantifier", "some $x in //row satisfies $x/@hit = '1'");
      ("take-10", "(//row)[position() le 10]");
      ("bounded-count", "count(//row) > 5");
      ("subsequence-10", "subsequence(//row, 1, 10)");
    ]
  in
  (* A/A workloads: every item is consumed, so streaming has nothing
     to skip and must not regress *)
  let aa_queries =
    [
      ("aa/count-all", "count(//row)");
      ("aa/string-join", "string-join(//row/@id, ',')");
    ]
  in
  let sizes = if smoke_enabled () then [ 200 ] else [ 1000; 10000 ] in
  let n_max = List.fold_left max 0 sizes in
  let wins = ref 0 in
  List.iter
    (fun n ->
      let doc = t11_doc n in
      Printf.printf "%-8d %-16s %14s %14s %9s\n" n "query" "streaming"
        "eager" "speedup";
      let compiled src =
        Xquery.Engine.compile ~static:(Xquery.Engine.default_static ()) src
      in
      let measure ~name ~gate src =
        let q = compiled src in
        let run () =
          ignore
            (Sys.opaque_identity
               (Xquery.Engine.run ~context_item:(Xdm_item.Node doc) q))
        in
        (* correctness first: the ablation switch is the test oracle *)
        let result enabled =
          with_streaming enabled (fun () ->
              Xdm_item.to_display_string
                (Xquery.Engine.run ~context_item:(Xdm_item.Node doc) q))
        in
        if result true <> result false then begin
          Printf.eprintf "T11 FAIL: streaming result differs on %s\n" src;
          exit 1
        end;
        let stream = with_streaming true (fun () -> ns_per_run run) in
        let eager = with_streaming false (fun () -> ns_per_run run) in
        let speedup = eager /. stream in
        if gate && n = n_max && speedup >= (if smoke_enabled () then 5. else 10.)
        then incr wins;
        entries :=
          json_entry ~name:(name ^ "/eager") ~n eager
          :: json_entry ~name ~n ~speedup stream
          :: !entries;
        Printf.printf "%-8s %-16s %14s %14s %8.1fx\n" "" name
          (pretty_ns stream) (pretty_ns eager) speedup
      in
      List.iter (fun (name, src) -> measure ~name ~gate:true src) early_queries;
      List.iter (fun (name, src) -> measure ~name ~gate:false src) aa_queries)
    sizes;
  write_json ~file:"BENCH_T11.json" (List.rev !entries);
  print_endline
    "\nshape check: early-exit queries cost O(1) in n under streaming and\n\
     O(n) eagerly; the A/A rows consume everything and must tie. Both\n\
     columns compute identical results (the ablation switch is the\n\
     test oracle).";
  if check then begin
    (* gate (a): enough early-exit workloads clear the speedup bar *)
    if !wins < 2 then begin
      Printf.eprintf
        "T11 FAIL: only %d early-exit queries cleared the speedup bar\n" !wins;
      exit 1
    end;
    (* gate (b): full-materialisation A/A within 10%, retried to absorb
       scheduler hiccups (same policy as T9) *)
    let doc = t11_doc n_max in
    let rec aa tries (name, src) =
      let q =
        Xquery.Engine.compile ~static:(Xquery.Engine.default_static ()) src
      in
      let run () =
        ignore
          (Sys.opaque_identity
             (Xquery.Engine.run ~context_item:(Xdm_item.Node doc) q))
      in
      let stream = with_streaming true (fun () -> ns_per_run run) in
      let eager = with_streaming false (fun () -> ns_per_run run) in
      let delta = (stream -. eager) /. eager in
      Printf.printf "A/A %s delta (try %d): %+.1f%%\n" name tries
        (100. *. delta);
      if delta <= 0.10 then ()
      else if tries >= 3 then begin
        Printf.eprintf
          "T11 FAIL: streaming regresses %s by more than 10%% after 3 tries\n"
          name;
        exit 1
      end
      else aa (tries + 1) (name, src)
    in
    List.iter (aa 1) aa_queries;
    print_endline "T11 check: results identical, speedup bar met, A/A ties"
  end

(* ------------------------------------------------------------------ *)
(* T12 — value indexes + join planner: hash join vs nested loop        *)

(* a shopping cart of [t12_items] line items against an n-product
   catalog (paper §6.3): the nested-loop join is O(items·n), the
   planned hash join O(items + n), and a sku point lookup is an O(n)
   scan vs an O(1) hash-bucket probe once the per-root value index is
   built (the first run builds it, later runs amortise it away) *)
let t12_items = 100

let t12_doc n =
  let buf = Buffer.create ((n + t12_items) * 56) in
  Buffer.add_string buf "<html><body><cart>";
  for i = 1 to t12_items do
    Buffer.add_string buf
      (Printf.sprintf "<item sku=\"s%d\" qty=\"%d\"/>"
         (1 + (i * 37 mod n))
         (i mod 5))
  done;
  Buffer.add_string buf "</cart><catalog>";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "<product sku=\"s%d\" cat=\"c%d\" price=\"%d\"/>" i
         (i mod 13) (i mod 97))
  done;
  Buffer.add_string buf "</catalog></body></html>";
  Dom.of_string (Buffer.contents buf)

let with_join_planning enabled f =
  let prev = Xquery.Optimizer.join_planning_enabled () in
  Xquery.Optimizer.set_join_planning enabled;
  Fun.protect
    ~finally:(fun () -> Xquery.Optimizer.set_join_planning prev)
    f

let with_value_index enabled f =
  let prev = Dom.value_index_enabled () in
  Dom.set_value_index enabled;
  Fun.protect ~finally:(fun () -> Dom.set_value_index prev) f

let compile_with_planning planning src =
  with_join_planning planning (fun () ->
      Xquery.Engine.compile ~static:(Xquery.Engine.default_static ()) src)

let bench_t12 ?(check = false) () =
  section "T12" "value indexes + join-aware planner vs nested-loop ablation";
  let entries = ref [] in
  let join_queries =
    [
      ( "join-eq",
        "for $c in //cart/item, $p in //catalog/product \
         where $c/@sku eq $p/@sku return concat($c/@sku, ':', $p/@price)" );
      ( "join-general",
        "for $c in //cart/item, $p in //catalog/product \
         where $c/@sku = $p/@sku and $c/@qty = '1' return $p/@price" );
    ]
  in
  (* (name, src, gated): the cat lookup hits a 1-in-13 bucket, so its
     win is bounded by the selectivity and stays ungated *)
  let lookup_queries =
    [
      ("lookup-sku", "count(//product[@sku eq 's123'])", true);
      ("lookup-cat", "count(//product[@cat eq 'c7'])", false);
    ]
  in
  let sizes = if smoke_enabled () then [ 200 ] else [ 1000; 10000 ] in
  let n_max = List.fold_left max 0 sizes in
  let wins = ref 0 in
  List.iter
    (fun n ->
      let doc = t12_doc n in
      let ctx = Xdm_item.Node doc in
      let run_q q () =
        ignore (Sys.opaque_identity (Xquery.Engine.run ~context_item:ctx q))
      in
      let show q =
        Xdm_item.to_display_string (Xquery.Engine.run ~context_item:ctx q)
      in
      Printf.printf "%-8d %-16s %14s %14s %9s\n" n "query" "accelerated"
        "baseline" "speedup";
      let record ~name ~gate fast slow =
        let speedup = slow /. fast in
        if gate && n = n_max && speedup >= (if smoke_enabled () then 5. else 10.)
        then incr wins;
        entries :=
          json_entry ~name:(name ^ "/baseline") ~n slow
          :: json_entry ~name ~n ~speedup fast
          :: !entries;
        Printf.printf "%-8s %-16s %14s %14s %8.1fx\n" "" name (pretty_ns fast)
          (pretty_ns slow) speedup
      in
      let measure_join ~name ~gate src =
        let q_on = compile_with_planning true src in
        let q_off = compile_with_planning false src in
        (* correctness first: the ablation switch is the test oracle *)
        if show q_on <> show q_off then begin
          Printf.eprintf "T12 FAIL: hash-join result differs on %s\n" src;
          exit 1
        end;
        record ~name ~gate (ns_per_run (run_q q_on)) (ns_per_run (run_q q_off))
      in
      let measure_lookup ~name ~gate src =
        let q =
          Xquery.Engine.compile ~static:(Xquery.Engine.default_static ()) src
        in
        let result enabled = with_value_index enabled (fun () -> show q) in
        if result true <> result false then begin
          Printf.eprintf "T12 FAIL: indexed result differs on %s\n" src;
          exit 1
        end;
        record ~name ~gate
          (with_value_index true (fun () -> ns_per_run (run_q q)))
          (with_value_index false (fun () -> ns_per_run (run_q q)))
      in
      List.iter (fun (name, src) -> measure_join ~name ~gate:true src)
        join_queries;
      List.iter (fun (name, src, gate) -> measure_lookup ~name ~gate src)
        lookup_queries)
    sizes;
  (* counters prove the fast paths actually executed: one build table,
     a probe per cart item, and at least one index hit *)
  let counter_n = 500 in
  let ctx = Xdm_item.Node (t12_doc counter_n) in
  let prev_metrics = !Obs.Metrics.enabled in
  Obs.Metrics.enabled := true;
  Obs.Metrics.reset ();
  let q_join = compile_with_planning true (snd (List.hd join_queries)) in
  ignore (Xquery.Engine.run ~context_item:ctx q_join);
  let q_lookup =
    Xquery.Engine.compile
      ~static:(Xquery.Engine.default_static ())
      "count(//product[@sku eq 's123'])"
  in
  with_value_index true (fun () ->
      ignore (Xquery.Engine.run ~context_item:ctx q_lookup));
  Obs.Metrics.enabled := prev_metrics;
  let builds = Obs.Metrics.counter "xquery.join.hash_builds"
  and probes = Obs.Metrics.counter "xquery.join.probes"
  and hits = Obs.Metrics.counter "dom.value_index.hits" in
  Printf.printf "\ncounters: hash-builds=%d probes=%d value-index-hits=%d\n"
    builds probes hits;
  entries :=
    json_entry ~name:"counters/value-index-hits" ~n:counter_n
      (float_of_int hits)
    :: json_entry ~name:"counters/join-probes" ~n:counter_n
         (float_of_int probes)
    :: json_entry ~name:"counters/join-hash-builds" ~n:counter_n
         (float_of_int builds)
    :: !entries;
  if builds < 1 || probes < t12_items || hits < 1 then begin
    Printf.eprintf "T12 FAIL: counters do not show accelerated execution\n";
    exit 1
  end;
  write_json ~file:"BENCH_T12.json" (List.rev !entries);
  print_endline
    "\nshape check: the hash join is O(items + n) against the nested\n\
     loop's O(items*n), and the sku lookup probes one hash bucket\n\
     instead of scanning the catalog. Both columns compute identical\n\
     results (the ablation switch is the test oracle).";
  if check then begin
    (* gate (a): enough accelerated workloads clear the speedup bar *)
    if !wins < 2 then begin
      Printf.eprintf
        "T12 FAIL: only %d accelerated queries cleared the speedup bar\n"
        !wins;
      exit 1
    end;
    (* gate (b): A/A parity — workloads the planner and index cannot
       help must not regress, retried to absorb scheduler hiccups *)
    let ctx = Xdm_item.Node (t12_doc n_max) in
    let run_q q () =
      ignore (Sys.opaque_identity (Xquery.Engine.run ~context_item:ctx q))
    in
    let rec aa tries (name, time_on, time_off) =
      let on = time_on () and off = time_off () in
      let delta = (on -. off) /. off in
      Printf.printf "A/A %s delta (try %d): %+.1f%%\n" name tries
        (100. *. delta);
      if delta <= 0.10 then ()
      else if tries >= 3 then begin
        Printf.eprintf
          "T12 FAIL: acceleration regresses %s by more than 10%% after 3 \
           tries\n"
          name;
        exit 1
      end
      else aa (tries + 1) (name, time_on, time_off)
    in
    (* a FLWOR the planner must leave alone (position variable) *)
    let no_join_src =
      "for $c at $i in //cart/item where $c/@qty = '1' return $i"
    in
    let q_on = compile_with_planning true no_join_src in
    let q_off = compile_with_planning false no_join_src in
    (* a path with no value predicate: the index has nothing to serve *)
    let q_scan =
      Xquery.Engine.compile
        ~static:(Xquery.Engine.default_static ())
        "string-join(//cart/item/@sku, ',')"
    in
    List.iter (aa 1)
      [
        ( "planner/no-join-flwor",
          (fun () -> ns_per_run (run_q q_on)),
          fun () -> ns_per_run (run_q q_off) );
        ( "vidx/non-indexable",
          (fun () -> with_value_index true (fun () -> ns_per_run (run_q q_scan))),
          fun () -> with_value_index false (fun () -> ns_per_run (run_q q_scan))
        );
      ];
    print_endline "T12 check: results identical, speedup bar met, A/A ties"
  end

(* ------------------------------------------------------------------ *)
(* T13 — closure compiler: compiled closures vs tree-walking evaluator *)

(* n rows with small numeric attributes. The compiled wins come from
   queries that touch every row and do per-row casts and arithmetic:
   full-materialisation shapes where the interpreter's per-AST-node
   dispatch and assoc-list variable lookups dominate, and the closure
   IR's direct calls over a pre-sized frame array do not. *)
let t13_doc n =
  let buf = Buffer.create (n * 40) in
  Buffer.add_string buf "<html><body><data>";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "<row a=\"%d\" b=\"%d\">%d</row>" i (i mod 97) (i * 3))
  done;
  Buffer.add_string buf "</data></body></html>";
  Dom.of_string (Buffer.contents buf)

let with_compiled enabled f =
  let prev = Xquery.Engine.compiled_eval_enabled () in
  Xquery.Engine.set_compiled_eval enabled;
  Fun.protect
    ~finally:(fun () -> Xquery.Engine.set_compiled_eval prev)
    f

let compile_with_compiled compiled src =
  with_compiled compiled (fun () ->
      Xquery.Engine.compile ~static:(Xquery.Engine.default_static ()) src)

let bench_t13 ?(check = false) () =
  section "T13" "closure compiler: compiled closures vs tree-walking eval";
  let entries = ref [] in
  (* (name, src n, gated): gated queries must clear the speedup bar at
     n_max. The ungated row is an order-by FLWOR: it lowers to an
     opaque core node, so both modes run the same tree-walker and it
     documents the A/A tie (the cost of the opaque fallback) rather
     than a win. *)
  let queries =
    [
      ( "flwor-arith",
        (fun _ ->
          "sum(for $x in //row return xs:integer($x/@a) * 2 + \
           xs:integer($x/@b))"),
        true );
      ( "where-filter",
        (fun _ ->
          "count(for $x in //row where xs:integer($x/@b) mod 7 eq 3 return \
           $x)"),
        true );
      ( "sum-range",
        (fun n ->
          Printf.sprintf "sum(for $i in 1 to %d return $i * 3 + ($i mod 7))" n),
        true );
      ( "aa-opaque-orderby",
        (fun _ ->
          "count(for $x in //row order by xs:integer($x/@b) return $x)"),
        false );
    ]
  in
  let sizes = if smoke_enabled () then [ 200 ] else [ 1000; 10000 ] in
  let n_max = List.fold_left max 0 sizes in
  let wins = ref 0 in
  List.iter
    (fun n ->
      let doc = t13_doc n in
      let ctx = Xdm_item.Node doc in
      let run_q q () =
        ignore (Sys.opaque_identity (Xquery.Engine.run ~context_item:ctx q))
      in
      let show q =
        Xdm_item.to_display_string (Xquery.Engine.run ~context_item:ctx q)
      in
      Printf.printf "%-8d %-16s %14s %14s %9s\n" n "query" "compiled"
        "interpreted" "speedup";
      let measure ~name ~gate src =
        let q_c = compile_with_compiled true src in
        let q_i = compile_with_compiled false src in
        (* correctness first: the ablation switch is the test oracle *)
        if
          with_compiled true (fun () -> show q_c)
          <> with_compiled false (fun () -> show q_i)
        then begin
          Printf.eprintf "T13 FAIL: compiled result differs on %s\n" src;
          exit 1
        end;
        let fast = with_compiled true (fun () -> ns_per_run (run_q q_c)) in
        let slow = with_compiled false (fun () -> ns_per_run (run_q q_i)) in
        let speedup = slow /. fast in
        if gate && n = n_max && speedup >= (if smoke_enabled () then 1.5 else 3.)
        then incr wins;
        entries :=
          json_entry ~name:(name ^ "/interpreted") ~n slow
          :: json_entry ~name ~n ~speedup fast
          :: !entries;
        Printf.printf "%-8s %-16s %14s %14s %8.1fx\n" "" name (pretty_ns fast)
          (pretty_ns slow) speedup
      in
      List.iter (fun (name, src, gate) -> measure ~name ~gate (src n)) queries)
    sizes;
  (* per-event listener dispatch (Fig. 1 loop): the listener body is a
     read-only computation, so it compiles to a closure and is invoked
     through Dynamic_context.compiled_fns at dispatch time. Each mode
     gets its own browser, loaded and dispatched under its own flag —
     the compiled-fns table is installed at context-build time. *)
  let ln = if smoke_enabled () then 100 else 2000 in
  let listener_script =
    "declare function local:on($evt, $obj) { sum(for $x in //item return \
     string-length($x/@id) + string-length($x/@class) * 2) }; on event \
     \"ping\" at (//item)[1] attach listener local:on"
  in
  let dispatch_cost compiled =
    with_compiled compiled (fun () ->
        let b = browser_with ~page:(wide_page ln) () in
        ignore (run_xq b listener_script);
        let target =
          List.hd (Dom.get_elements_by_local_name (B.document b) "item")
        in
        ns_per_run (fun () -> B.dispatch b ~target "ping"))
  in
  let d_fast = dispatch_cost true in
  let d_slow = dispatch_cost false in
  Printf.printf "%-8d %-16s %14s %14s %8.1fx\n" ln "event-dispatch"
    (pretty_ns d_fast) (pretty_ns d_slow) (d_slow /. d_fast);
  entries :=
    json_entry ~name:"event-dispatch/interpreted" ~n:ln d_slow
    :: json_entry ~name:"event-dispatch" ~n:ln ~speedup:(d_slow /. d_fast)
         d_fast
    :: !entries;
  (* counters prove the closure path actually executed: programs and
     functions compiled, closure nodes emitted *)
  let stats = Xquery.Compile.stats () in
  let stat k = try List.assoc k stats with Not_found -> 0 in
  Printf.printf
    "\ncounters: programs=%d fns=%d closure-nodes=%d opaque-nodes=%d\n"
    (stat "programs") (stat "functions") (stat "nodes") (stat "opaque-nodes");
  entries :=
    json_entry ~name:"counters/closure-nodes" ~n:n_max
      (float_of_int (stat "nodes"))
    :: json_entry ~name:"counters/functions" ~n:n_max
         (float_of_int (stat "functions"))
    :: json_entry ~name:"counters/programs" ~n:n_max
         (float_of_int (stat "programs"))
    :: !entries;
  if stat "programs" < 1 || stat "functions" < 1 || stat "nodes" < 1 then begin
    Printf.eprintf "T13 FAIL: compile counters do not show compiled execution\n";
    exit 1
  end;
  write_json ~file:"BENCH_T13.json" (List.rev !entries);
  print_endline
    "\nshape check: both columns compute identical results (the ablation\n\
     switch is the test oracle); the compiled column runs closure\n\
     compositions over a frame array, the interpreted column walks the\n\
     optimized AST re-resolving every variable by name.";
  if check then begin
    (* gate (a): enough compiled workloads clear the speedup bar *)
    if !wins < 2 then begin
      Printf.eprintf
        "T13 FAIL: only %d compiled queries cleared the speedup bar\n" !wins;
      exit 1
    end;
    (* gate (b): A/A parity — shapes that lower to an opaque core node
       run the same tree-walker in both modes and must not regress
       (the bound covers the opaque fallback's rebind overhead),
       retried to absorb scheduler hiccups *)
    let ctx = Xdm_item.Node (t13_doc n_max) in
    let run_q q () =
      ignore (Sys.opaque_identity (Xquery.Engine.run ~context_item:ctx q))
    in
    let rec aa tries (name, src) =
      let q_c = compile_with_compiled true src in
      let q_i = compile_with_compiled false src in
      let on = with_compiled true (fun () -> ns_per_run (run_q q_c)) in
      let off = with_compiled false (fun () -> ns_per_run (run_q q_i)) in
      let delta = (on -. off) /. off in
      Printf.printf "A/A %s delta (try %d): %+.1f%%\n" name tries
        (100. *. delta);
      if delta <= 0.10 then ()
      else if tries >= 3 then begin
        Printf.eprintf
          "T13 FAIL: compiled eval regresses %s by more than 10%% after 3 \
           tries\n"
          name;
        exit 1
      end
      else aa (tries + 1) (name, src)
    in
    List.iter (aa 1)
      [
        ( "opaque-orderby",
          "count(for $x in //row order by xs:integer($x/@b) return $x)" );
      ];
    print_endline "T13 check: results identical, speedup bar met, A/A ties"
  end

(* ------------------------------------------------------------------ *)
(* T14 — incremental recomputation: footprint-tracked listener dispatch *)

(* A page of [regions] independent widgets, each a div of [vals_per]
   <val> leaves, with one listener registration per div (so [regions]
   memos). One "event" = mutate the first <val> of one region, then
   dispatch "tick" to every region — a 1/[regions] mutation footprint.
   Incremental dispatch re-runs the one intersecting listener and skips
   the rest; the ablation re-runs all of them. *)
let t14_page ~regions ~vals_per ~updating =
  let buf = Buffer.create (regions * vals_per * 16) in
  Buffer.add_string buf {|<html><head><script type="text/xquery">|};
  Buffer.add_string buf
    (if updating then
       (* conditionally updating: pure (and skippable) until a region's
          sum crosses the threshold, then it writes a marker. Initial
          sums are ~1.5*vals_per and event mutations keep values in
          0..3, so only a deliberate push (all 9s: 9*vals_per) crosses *)
       Printf.sprintf
         "declare updating function local:w($evt, $obj) { if \
          (sum($obj//val) gt %d and count($obj/over) eq 0) then insert node \
          <over/> into $obj else () };"
         (5 * vals_per)
     else "declare function local:w($evt, $obj) { sum($obj//val) };");
  Buffer.add_string buf
    {| on event "tick" at //div attach listener local:w</script></head><body>|};
  for r = 0 to regions - 1 do
    Buffer.add_string buf (Printf.sprintf {|<div id="r%d">|} r);
    for j = 1 to vals_per do
      Buffer.add_string buf (Printf.sprintf "<val>%d</val>" (j mod 4))
    done;
    Buffer.add_string buf "</div>"
  done;
  Buffer.add_string buf "</body></html>";
  Buffer.contents buf

let with_incremental enabled f =
  Xquery.Reactive.set_incremental enabled;
  Fun.protect
    ~finally:(fun () -> Xquery.Reactive.set_incremental true)
    f

let bench_t14 ?(check = false) () =
  section "T14"
    "incremental recomputation: footprint-tracked listeners vs re-run-all";
  let regions = if smoke_enabled () then 20 else 100 in
  let vals_per = if smoke_enabled () then 10 else 100 in
  let entries = ref [] in
  let n_nodes = regions * vals_per in
  (* build a browser under the given flag: disabling incremental drops
     memo registrations for good, so each mode gets its own page *)
  let setup ~updating () =
    let b = browser_with ~page:(t14_page ~regions ~vals_per ~updating) () in
    let doc = B.document b in
    let divs =
      Array.init regions (fun r ->
          Option.get (Dom.get_element_by_id doc (Printf.sprintf "r%d" r)))
    in
    let vals =
      Array.map
        (fun d -> List.hd (Dom.get_elements_by_local_name d "val"))
        divs
    in
    (b, divs, vals)
  in
  (* one event: mutate one region (or all, for the A/A row), dispatch
     everywhere. Values stay single digits so the conditional writer's
     threshold only matters to the equivalence check below. *)
  let event ~all (b, divs, vals) =
    let c = ref 0 in
    fun () ->
      incr c;
      (* one batched changeset per event, like a PUL apply *)
      Dom.with_batch (fun () ->
          if all then
            Array.iter
              (fun v -> Dom.set_value v (string_of_int (!c mod 4)))
              vals
          else Dom.set_value vals.(!c mod regions) (string_of_int (!c mod 4)));
      Array.iter (fun d -> B.dispatch b ~target:d "tick") divs
  in
  (* correctness first: the ablation switch is the test oracle. Drive
     an identical deterministic event sequence through both modes —
     including conditionally-updating listeners that cross their
     threshold mid-sequence — and require identical final documents. *)
  let final_doc ~incremental ~updating =
    with_incremental incremental (fun () ->
        let ((b, divs, _) as st) = setup ~updating () in
        let ev = event ~all:false st in
        for _ = 1 to 3 * regions do
          ev ()
        done;
        (* push region 0 over the conditional threshold, then keep the
           event stream going: the conditional write must fire (and fire
           once) in both modes *)
        List.iter
          (fun v -> Dom.set_value v "9")
          (Dom.get_elements_by_local_name (Array.get divs 0) "val");
        for _ = 1 to regions do
          ev ()
        done;
        Dom.serialize (B.document b))
  in
  List.iter
    (fun updating ->
      let inc = final_doc ~incremental:true ~updating in
      let full = final_doc ~incremental:false ~updating in
      if not (String.equal inc full) then begin
        Printf.eprintf
          "T14 FAIL: incremental diverges from full re-evaluation \
           (updating=%b)\n"
          updating;
        exit 1
      end)
    [ false; true ];
  Printf.printf "equivalence: incremental == full on %d-node pages\n\n" n_nodes;
  Printf.printf "%-8d %-18s %14s %14s %9s\n" n_nodes "workload" "incremental"
    "re-run-all" "speedup";
  let skip_ratio = ref 0. in
  let measure ~name ~all ~updating =
    let time ~incremental =
      with_incremental incremental (fun () ->
          let st = setup ~updating () in
          let ev = event ~all st in
          ev ();
          (* warm every memo *)
          let s0 = Xquery.Reactive.counter_stats () in
          let ns = ns_per_run ev in
          (ns, s0, Xquery.Reactive.counter_stats ()))
    in
    let fast, s0, s1 = time ~incremental:true in
    let slow, _, _ = time ~incremental:false in
    let speedup = slow /. fast in
    let delta k = List.assoc k s1 - List.assoc k s0 in
    (if name = "pure-agg" then
       let reruns = max 1 (delta "reruns") in
       skip_ratio := float_of_int (delta "skips") /. float_of_int reruns);
    Printf.printf "%-8s %-18s %14s %14s %8.1fx\n" "" name (pretty_ns fast)
      (pretty_ns slow) speedup;
    entries :=
      json_entry ~name:(name ^ "/full") ~n:n_nodes slow
      :: json_entry ~name ~n:n_nodes ~speedup fast
      :: !entries;
    speedup
  in
  let pure_speedup = measure ~name:"pure-agg" ~all:false ~updating:false in
  let _ = measure ~name:"cond-write" ~all:false ~updating:true in
  Printf.printf "skip/rerun ratio during pure-agg: %.1f\n" !skip_ratio;
  entries :=
    json_entry ~name:"counters/skip-ratio" ~n:n_nodes !skip_ratio :: !entries;
  write_json ~file:"BENCH_T14.json" (List.rev !entries);
  if check then begin
    (* gate (a): the 1%-footprint workload must clear the speedup bar.
       The smoke bar sits low like T13's: on 200-node smoke pages the
       per-dispatch fixed costs (event construction, fingerprinting)
       dilute the skip win that the 10k-node run shows in full *)
    let bar = if smoke_enabled () then 1.5 else 10. in
    if pure_speedup < bar then begin
      Printf.eprintf "T14 FAIL: pure-agg speedup %.1fx below %.1fx bar\n"
        pure_speedup bar;
      exit 1
    end;
    (* gate (b): counters prove dispatches were skipped, not run and
       discarded — with [regions] listeners and one dirtied per event,
       the skip:rerun ratio is about regions-1 *)
    let ratio_bar = if smoke_enabled () then 5. else 10. in
    if !skip_ratio < ratio_bar then begin
      Printf.eprintf "T14 FAIL: skip/rerun ratio %.1f below %.1f\n" !skip_ratio
        ratio_bar;
      exit 1
    end;
    (* gate (c): A/A — when every region is dirtied every event (100%
       footprint), incremental dispatch re-runs everything and must not
       regress beyond its bookkeeping overhead (footprint recording on
       each run + intersection per commit); retried to absorb scheduler
       hiccups *)
    let rec aa tries =
      let time ~incremental =
        with_incremental incremental (fun () ->
            let st = setup ~updating:false () in
            let ev = event ~all:true st in
            ev ();
            ns_per_run ev)
      in
      let on = time ~incremental:true in
      let off = time ~incremental:false in
      let delta = (on -. off) /. off in
      Printf.printf "A/A full-footprint delta (try %d): %+.1f%%\n" tries
        (100. *. delta);
      if delta <= 0.20 then ()
      else if tries >= 3 then begin
        Printf.eprintf
          "T14 FAIL: incremental dispatch regresses the full-footprint A/A \
           by more than 20%% after 3 tries\n";
        exit 1
      end
      else aa (tries + 1)
    in
    aa 1;
    print_endline "T14 check: equivalent, speedup bar met, skips proven, A/A ok"
  end

(* ------------------------------------------------------------------ *)
(* T15 — fleet-scale virtual-time simulation: N concurrent sessions
   against one app server with a priced request queue. The
   server-rendered workload pays one evaluation per visit and queues up
   as the fleet grows; the migrated (F2) workload only fetches cheap
   static artifacts, so its tail latency stays flat. All numbers are
   virtual-time and deterministic per seed. *)

let bench_t15 ?(check = false) () =
  section "T15"
    "fleet simulation: server-rendered vs migrated tail latency under load";
  let sizes = if smoke_enabled () then [ 8; 24 ] else [ 100; 400; 1600 ] in
  let seed = 11 in
  (* fixed arrival window: the offered load grows linearly with the
     fleet while the server's capacity (1/service_cost pages per
     virtual second) stays put, so larger fleets overload it *)
  let cell ?shed_depth ?(rate = 0.) ?(spread = 1.) ~sessions ~migrated ~seed () =
    Scenarios.run_fleet ~visits:3 ~think:1. ~service_cost:0.05 ~spread ?shed_depth
      ~rate ~sessions ~migrated ~seed ()
  in
  Printf.printf
    "(3 visits/session over a 1 s arrival window, page cost 0.05 virtual s,\n\
    \ static cost 0.005; latencies in virtual seconds; seed %d)\n"
    seed;
  Printf.printf "%-6s %-9s | %6s %6s | %8s %8s %8s | %6s %8s\n" "fleet" "mode"
    "pgOK" "evals" "p50" "p99" "p999" "depth" "pages/s";
  let entries = ref [] in
  let largest = List.fold_left max 0 sizes in
  let at_largest = ref None in
  List.iter
    (fun sessions ->
      let server = cell ~sessions ~migrated:false ~seed () in
      let migrated = cell ~sessions ~migrated:true ~seed () in
      if sessions = largest then at_largest := Some (server, migrated);
      List.iter
        (fun (mode, r, speedup) ->
          Printf.printf "%-6d %-9s | %6d %6d | %8.3f %8.3f %8.3f | %6d %8.1f\n"
            sessions mode r.Fleet.pages_ok r.Fleet.server_evals r.Fleet.p50
            r.Fleet.p99 r.Fleet.p999 r.Fleet.max_queue_depth
            r.Fleet.pages_per_sec;
          (* ns_per_op carries the p99 (in ns) so the JSON schema stays
             the same as every other bench file *)
          entries :=
            json_entry ?speedup
              ~name:(Printf.sprintf "fleet%d/%s" sessions mode)
              ~n:sessions
              (r.Fleet.p99 *. 1e9)
            :: !entries)
        [
          ("server", server, None);
          ("migrated", migrated, Some (server.Fleet.p99 /. migrated.Fleet.p99));
        ])
    sizes;
  print_endline
    "\nshape check: the server-rendered p99 climbs with the fleet size while\n\
     the migrated workload's stays near its raw fetch cost.";
  write_json ~file:"BENCH_T15.json" (List.rev !entries);
  if check then begin
    (* gate (a): determinism — the same seed reproduces the whole
       report (latency percentiles, shed counts, per-session totals)
       bit for bit, across two different seeds *)
    List.iter
      (fun seed ->
        let go () =
          cell ~sessions:(List.hd sizes) ~rate:0.2 ~shed_depth:6
            ~migrated:false ~seed ()
        in
        if go () <> go () then begin
          Printf.eprintf "T15 FAIL: same-seed fleets diverge (seed %d)\n" seed;
          exit 1
        end)
      [ seed; seed + 12 ];
    (* gate (b): admission control — under a burst arrival the server
       sheds rather than queue, and the backlog never exceeds the
       configured threshold *)
    let depth = 4 in
    let shed =
      cell ~sessions:largest ~spread:0.05 ~shed_depth:depth ~migrated:false
        ~seed ()
    in
    if shed.Fleet.sheds = 0 then begin
      Printf.eprintf "T15 FAIL: burst at depth %d shed no load\n" depth;
      exit 1
    end;
    if shed.Fleet.max_queue_depth > depth then begin
      Printf.eprintf "T15 FAIL: queue depth %d exceeds shed threshold %d\n"
        shed.Fleet.max_queue_depth depth;
      exit 1
    end;
    (* gate (c): the paper's offload claim at fleet scale — migrating
       the page work into the browsers strictly beats rendering on the
       server at the largest fleet's p99 *)
    let server, migrated = Option.get !at_largest in
    if not (migrated.Fleet.p99 < server.Fleet.p99) then begin
      Printf.eprintf
        "T15 FAIL: migrated p99 %.3fs not below server-rendered %.3fs at \
         fleet %d\n"
        migrated.Fleet.p99 server.Fleet.p99 largest;
      exit 1
    end;
    if migrated.Fleet.server_evals <> 0 then begin
      Printf.eprintf "T15 FAIL: migrated fleet still evaluated %d pages \
                      server-side\n"
        migrated.Fleet.server_evals;
      exit 1
    end;
    print_endline
      "T15 check: deterministic, shedding bounds the queue, migration \
       flattens the p99"
  end

(* ------------------------------------------------------------------ *)
(* T16 — global name interning: symbol fast paths vs string compares.

   The intern table and the symbol keying of every index are always
   on (interning is a bijection, so both modes agree on every key);
   the ablation gates only the comparison fast paths — Qname
   equality and the evaluator's choice of symbol- vs string-keyed
   probe entry points. Element names share a long common prefix so
   the ablated String.equal pays for most of the length before it
   can decide; the interned compare is two ints regardless. *)

let with_interning enabled f =
  Dom.set_interned_fastpaths enabled;
  Fun.protect ~finally:(fun () -> Dom.set_interned_fastpaths true) f

let t16_prefix = String.make 96 'x'
let t16_name tag = t16_prefix ^ "-" ^ tag

(* The name-scan workloads use names sharing a long common prefix: the
   ablated comparison walks the prefix on every candidate — matching
   or not — while the interned one compares two ints. The parse and
   dispatch workloads keep the moderate 96-char names above. *)
let t16_scan_prefix = String.make 1024 'y'
let t16_scan_name tag = t16_scan_prefix ^ "-" ^ tag

let t16_xml ?(name = t16_name) n =
  let buf = Buffer.create (n * 220) in
  Buffer.add_string buf (Printf.sprintf "<%s>" (name "root"));
  for i = 1 to n do
    let tag = name (if i mod 2 = 0 then "even" else "odd") in
    Buffer.add_string buf
      (Printf.sprintf "<%s k=\"%d\">%d</%s>" tag (i mod 16) i tag)
  done;
  Buffer.add_string buf (Printf.sprintf "</%s>" (name "root"));
  Buffer.contents buf

(* [regions] widgets plus one <spare> sibling no listener attaches to
   or reads: mutating it is the always-miss dispatch workload, where
   the per-listener cost is exactly the footprint intersection. *)
let t16_page ~regions ~vals_per =
  let buf = Buffer.create (regions * vals_per * 140) in
  Buffer.add_string buf {|<html><head><script type="text/xquery">|};
  Buffer.add_string buf
    (Printf.sprintf
       "declare function local:w($evt, $obj) { count($obj//%s) + \
        count($obj//%s) * 2 };"
       (t16_name "va") (t16_name "vb"));
  Buffer.add_string buf
    {| on event "tick" at //div attach listener local:w</script></head><body><spare>0</spare>|};
  for r = 0 to regions - 1 do
    Buffer.add_string buf (Printf.sprintf {|<div id="r%d">|} r);
    for j = 1 to vals_per do
      let tag = t16_name (if j mod 2 = 0 then "va" else "vb") in
      Buffer.add_string buf (Printf.sprintf "<%s>%d</%s>" tag (j mod 4) tag)
    done;
    Buffer.add_string buf "</div>"
  done;
  Buffer.add_string buf "</body></html>";
  Buffer.contents buf

let bench_t16 ?(check = false) () =
  section "T16" "name interning: symbol fast paths vs string comparison";
  let entries = ref [] in
  (* --- parse: both modes intern (the table is not ablatable), so the
     columns document an A/A tie; the sym counters prove each distinct
     name was interned exactly once *)
  let n_parse = if smoke_enabled () then 1000 else 10000 in
  let xml = t16_xml n_parse in
  let size0 = Xmlb.Sym.size () in
  ignore (Sys.opaque_identity (Dom.of_string xml));
  let size1 = Xmlb.Sym.size () in
  ignore (Sys.opaque_identity (Dom.of_string xml));
  let size2 = Xmlb.Sym.size () in
  let parse_on =
    with_interning true (fun () ->
        ns_per_run (fun () -> ignore (Sys.opaque_identity (Dom.of_string xml))))
  in
  let parse_off =
    with_interning false (fun () ->
        ns_per_run (fun () -> ignore (Sys.opaque_identity (Dom.of_string xml))))
  in
  Printf.printf "%-8d %-18s %14s %14s %9s\n" n_parse "workload" "interned"
    "ablated" "speedup";
  Printf.printf "%-8s %-18s %14s %14s %8.1fx\n" "" "parse-dom"
    (pretty_ns parse_on) (pretty_ns parse_off) (parse_off /. parse_on);
  Printf.printf
    "sym table: %d distinct names after parse (+%d), re-parse added %d\n"
    size1 (size1 - size0) (size2 - size1);
  entries :=
    json_entry ~name:"parse-dom/ablated" ~n:n_parse parse_off
    :: json_entry ~name:"parse-dom" ~n:n_parse parse_on
    :: !entries;
  (* --- name-test scans: child axis tests every sibling, descendant
     axis refines a local-name index bucket — both pay one Qname
     comparison per candidate, and the shared 1 KiB prefix makes the
     ablated comparison walk the whole name every time *)
  let n_scan = if smoke_enabled () then 2000 else 20000 in
  let ctx = Xdm_item.Node (Dom.of_string (t16_xml ~name:t16_scan_name n_scan)) in
  let scan_queries =
    [
      ( "child-name-scan",
        Printf.sprintf "count(/%s/%s)" (t16_scan_name "root")
          (t16_scan_name "even") );
      ("desc-name-scan", Printf.sprintf "count(//%s)" (t16_scan_name "even"));
    ]
  in
  let measure_scan (name, src) =
    let q =
      Xquery.Engine.compile ~static:(Xquery.Engine.default_static ()) src
    in
    let run_q () =
      ignore (Sys.opaque_identity (Xquery.Engine.run ~context_item:ctx q))
    in
    let show () =
      Xdm_item.to_display_string (Xquery.Engine.run ~context_item:ctx q)
    in
    (* correctness first: the ablation switch is the test oracle *)
    let r_on = with_interning true show in
    let r_off = with_interning false show in
    if not (String.equal r_on r_off) then begin
      Printf.eprintf "T16 FAIL: interned result differs on %s (%s vs %s)\n"
        name r_on r_off;
      exit 1
    end;
    let fast = with_interning true (fun () -> ns_per_run run_q) in
    let slow = with_interning false (fun () -> ns_per_run run_q) in
    let speedup = slow /. fast in
    Printf.printf "%-8s %-18s %14s %14s %8.1fx\n" "" name (pretty_ns fast)
      (pretty_ns slow) speedup;
    entries :=
      json_entry ~name:(name ^ "/ablated") ~n:n_scan slow
      :: json_entry ~name ~n:n_scan ~speedup fast
      :: !entries;
    (name, speedup)
  in
  let scan_speedups = List.map measure_scan scan_queries in
  (* --- listener dispatch: rerun-all re-runs name-heavy bodies under
     each mode; always-miss isolates the footprint intersection, which
     is symbol-keyed int hashing in BOTH modes and must tie *)
  let regions = if smoke_enabled () then 20 else 60 in
  let vals_per = if smoke_enabled () then 10 else 50 in
  let setup () =
    let b = browser_with ~page:(t16_page ~regions ~vals_per) () in
    let doc = B.document b in
    let divs =
      Array.init regions (fun r ->
          Option.get (Dom.get_element_by_id doc (Printf.sprintf "r%d" r)))
    in
    let firsts =
      Array.map
        (fun d -> List.hd (Dom.get_elements_by_local_name d (t16_name "vb")))
        divs
    in
    let spare = List.hd (Dom.get_elements_by_local_name doc "spare") in
    (b, divs, firsts, spare)
  in
  let dispatch_cost ~miss enabled =
    with_interning enabled (fun () ->
        let b, divs, firsts, spare = setup () in
        let c = ref 0 in
        let ev () =
          incr c;
          Dom.with_batch (fun () ->
              if miss then Dom.set_value spare (string_of_int (!c mod 4))
              else
                Array.iter
                  (fun v -> Dom.set_value v (string_of_int (!c mod 4)))
                  firsts);
          Array.iter (fun d -> B.dispatch b ~target:d "tick") divs
        in
        ev ();
        (* warm every memo *)
        ns_per_run ev)
  in
  let rerun_on = dispatch_cost ~miss:false true in
  let rerun_off = dispatch_cost ~miss:false false in
  Printf.printf "%-8d %-18s %14s %14s %8.1fx\n" (regions * vals_per)
    "dispatch-rerun" (pretty_ns rerun_on) (pretty_ns rerun_off)
    (rerun_off /. rerun_on);
  entries :=
    json_entry ~name:"dispatch-rerun/ablated" ~n:(regions * vals_per) rerun_off
    :: json_entry
         ~name:"dispatch-rerun" ~n:(regions * vals_per)
         ~speedup:(rerun_off /. rerun_on) rerun_on
    :: !entries;
  let miss_on = dispatch_cost ~miss:true true in
  let miss_off = dispatch_cost ~miss:true false in
  Printf.printf "%-8d %-18s %14s %14s %8.1fx\n" (regions * vals_per)
    "dispatch-miss" (pretty_ns miss_on) (pretty_ns miss_off)
    (miss_off /. miss_on);
  entries :=
    json_entry ~name:"dispatch-miss/ablated" ~n:(regions * vals_per) miss_off
    :: json_entry
         ~name:"dispatch-miss" ~n:(regions * vals_per)
         ~speedup:(miss_off /. miss_on) miss_on
    :: !entries;
  let stats = Xmlb.Sym.stats () in
  let stat k = try List.assoc k stats with Not_found -> 0 in
  Printf.printf "\nsym counters: size=%d bytes=%d hits=%d misses=%d\n"
    (stat "size") (stat "bytes") (stat "hits") (stat "misses");
  entries :=
    json_entry ~name:"sym/bytes" ~n:(stat "size") (float_of_int (stat "bytes"))
    :: json_entry ~name:"sym/size" ~n:(stat "size")
         (float_of_int (stat "size"))
    :: !entries;
  write_json ~file:"BENCH_T16.json" (List.rev !entries);
  if check then begin
    (* gate (a): the parser memoizes per-document and the table dedups
       globally — re-parsing the same document must intern nothing *)
    if size2 <> size1 then begin
      Printf.eprintf "T16 FAIL: re-parse grew the intern table by %d\n"
        (size2 - size1);
      exit 1
    end;
    (* gate (b): a name-test scan clears the speedup bar (retried: the
       per-candidate win is tens of ns, so smoke quotas are noisy) *)
    let bar = 1.3 in
    let best l = List.fold_left (fun a (_, s) -> Float.max a s) 0. l in
    let rec scan_gate tries speedups =
      if best speedups >= bar then ()
      else if tries >= 3 then begin
        Printf.eprintf "T16 FAIL: best name-scan speedup %.2fx below %.1fx\n"
          (best speedups) bar;
        exit 1
      end
      else begin
        Printf.printf "scan gate below bar, re-measuring (try %d)\n" (tries + 1);
        scan_gate (tries + 1) (List.map measure_scan scan_queries)
      end
    in
    scan_gate 1 scan_speedups;
    (* gate (c): A/A — the always-miss dispatch exercises only machinery
       both modes share (symbol-keyed footprint intersection), so the
       ablation must not change it; retried to absorb scheduler
       hiccups *)
    let rec aa tries =
      let on = dispatch_cost ~miss:true true in
      let off = dispatch_cost ~miss:true false in
      let delta = (on -. off) /. off in
      Printf.printf "A/A always-miss delta (try %d): %+.1f%%\n" tries
        (100. *. delta);
      if delta <= 0.10 then ()
      else if tries >= 3 then begin
        Printf.eprintf
          "T16 FAIL: interning changes the always-miss dispatch by more \
           than 10%% after 3 tries\n";
        exit 1
      end
      else aa (tries + 1)
    in
    aa 1;
    print_endline
      "T16 check: results identical, intern table stable, scan bar met, \
       A/A ties"
  end

let () =
  let only = ref [] in
  let check = ref false in
  let trace_file = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--smoke" :: rest ->
        set_smoke true;
        parse_args rest
    | "--only" :: ids :: rest ->
        only := String.split_on_char ',' (String.lowercase_ascii ids);
        parse_args rest
    | "--check" :: rest ->
        check := true;
        parse_args rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        parse_args rest
    | arg :: _ ->
        Printf.eprintf
          "usage: main.exe [--smoke] [--only f1,t2,...] [--check] [--trace FILE]; got %S\n"
          arg;
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let run id f = if !only = [] || List.mem id !only then f () in
  print_endline "XQuery in the Browser — benchmark harness";
  print_endline "(virtual-time metrics are deterministic; wall-clock numbers";
  print_endline " are Bechamel OLS estimates on this machine)";
  if smoke_enabled () then print_endline "[smoke mode: tiny sizes and quotas]";
  run "f1" bench_f1;
  run "f2" bench_f2;
  run "f3" bench_f3;
  run "t1" bench_t1;
  run "t2" bench_t2;
  run "t3" bench_t3;
  run "t4" bench_t4;
  run "t5" bench_t5;
  run "t6" bench_t6;
  run "t7" bench_t7;
  run "t8" bench_t8;
  run "t9" (bench_t9 ~check:!check ?trace_file:!trace_file);
  run "t10" (bench_t10 ~check:!check);
  run "t11" (bench_t11 ~check:!check);
  run "t12" (bench_t12 ~check:!check);
  run "t13" (bench_t13 ~check:!check);
  run "t14" (bench_t14 ~check:!check);
  run "t15" (bench_t15 ~check:!check);
  run "t16" (bench_t16 ~check:!check);
  print_endline "\ndone."
